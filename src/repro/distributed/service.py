"""The distributed solve service: submit sweeps, stream results.

:class:`SolveService` is the submitter-side facade over the spool.  It
prepares tasks with the exact same semantics as the in-process
:class:`~repro.runtime.runner.BatchRunner` — same registry resolution, same
derived seeds, same cache keys, same in-batch dedup — but hands execution to
whatever ``repro worker`` processes share the spool, and gives results back
as a stream instead of a blocking report:

* cache hits (shared spool cache, probed at submission) are streamed
  immediately without ever touching the queue;
* duplicate instances inside one submission are enqueued once and fanned
  out to every occurrence when the single result lands;
* duplicate instances *across* submissions coalesce too: a persistent
  :class:`InFlightIndex` keyed on the canonical problem hash maps every
  in-flight problem to its spool task, and the actual spool write happens
  under the index lock — so two concurrent submissions of the same problem
  (from any number of threads, or from the gateway's concurrent clients)
  produce exactly one spool task, with both submitters streaming the one
  result;
* everything else is enqueued lazily under the stream's backpressure
  window and yielded as workers publish results (or in submission order
  with ``ordered=True``).

``gather`` wraps the stream into the familiar :class:`BatchReport` when the
caller does want to block for everything.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, Iterable, Iterator, List, Optional,
                    Sequence, Tuple, Union)

from repro.core.dwg import SSBWeighting
from repro.distributed.spool import WorkQueue
from repro.distributed.stream import ResultStream
from repro.distributed.worker import spool_cache
from repro.model.problem import AssignmentProblem
from repro.observability.tracing import Span, Tracer
from repro.runtime.cache import ResultCache, cache_get_with_source, make_cache_entry
from repro.runtime.payload import PreparedTask, prepare_tasks, task_payload
from repro.runtime.registry import SolverRegistry, default_registry
from repro.runtime.runner import BatchItemResult, BatchReport, BatchTask


@dataclass
class _Entry:
    """One submission slot: a prepared task plus its execution route."""

    prep: PreparedTask
    index: int
    cached_entry: Optional[Dict[str, Any]] = None
    cache_source: Optional[str] = None
    leader: Optional[int] = None     #: index of the identical task queued for us
    task_id: Optional[str] = None    #: set once the task is spooled
    coalesced: bool = False          #: attached to another submission's task
    span: Optional[Span] = None      #: root tracing span, open until the result


class InFlightIndex:
    """Canonical-problem-hash → in-flight spool task, across submissions.

    The per-submission ``leaders`` dict in :meth:`SolveService.submit` only
    coalesces duplicates *within* one call; without this index two
    concurrent submissions of the same problem would both enqueue and both
    solve.  The index is shared by every submission of one service (and by
    the gateway's concurrent clients), and :meth:`acquire` runs the actual
    spool write *inside* the lock — of any number of racing duplicate
    submitters, exactly one creates the spool task and the rest attach to
    it.

    Entries validate against the spool on every lookup
    (:meth:`WorkQueue.task_live`): a task that was dead-lettered or whose
    artifacts vanished (compaction, manual cleanup) never absorbs new
    submissions — those enqueue fresh.  :meth:`complete` drops an entry once
    its result has been observed, so later submissions of the same problem
    re-solve instead of chaining onto a stale task id forever.
    """

    def __init__(self, queue: WorkQueue) -> None:
        self._queue = queue
        self._lock = threading.Lock()
        self._by_key: Dict[str, str] = {}

    def lookup(self, key: str) -> Optional[str]:
        """The live in-flight task for ``key``, dropping stale entries."""
        with self._lock:
            return self._lookup_locked(key)

    def _lookup_locked(self, key: str) -> Optional[str]:
        task_id = self._by_key.get(key)
        if task_id is None:
            return None
        if not self._queue.task_live(task_id):
            del self._by_key[key]
            return None
        return task_id

    def acquire(self, key: str,
                submit: Callable[[], str]) -> Tuple[str, bool]:
        """``(task_id, created)``: attach to the in-flight task or spool one.

        ``submit`` runs under the index lock (one atomic spool write), which
        is what makes K racing duplicate submissions produce exactly one
        spool task.
        """
        with self._lock:
            task_id = self._lookup_locked(key)
            if task_id is not None:
                return task_id, False
            task_id = submit()
            self._by_key[key] = task_id
            return task_id, True

    def complete(self, key: str, task_id: str) -> None:
        """Forget ``key`` once ``task_id``'s outcome has been observed."""
        with self._lock:
            if self._by_key.get(key) == task_id:
                del self._by_key[key]

    def __len__(self) -> int:
        with self._lock:
            return len(self._by_key)


@dataclass
class Submission:
    """Handle for one submitted sweep (input order is preserved)."""

    entries: List[_Entry]
    started: float = field(default_factory=time.perf_counter)

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def cache_hits(self) -> int:
        return sum(1 for e in self.entries if e.cached_entry is not None)


class SolveService:
    """Submit assignment sweeps to a spool and stream their results.

    Parameters
    ----------
    spool:
        Spool directory or an existing :class:`WorkQueue`.
    cache:
        Result cache probed at submission and fed by streamed results.  The
        default is the spool-colocated tiered store — the same one
        ``repro worker`` uses — so submitter and workers stay coherent.
        Pass ``cache=None`` explicitly to disable.
    """

    def __init__(self, spool: Union[str, WorkQueue],
                 cache: Union[ResultCache, None, str] = "spool",
                 registry: Optional[SolverRegistry] = None,
                 base_seed: Optional[int] = None,
                 validate: bool = True,
                 tracer: Optional[Tracer] = None,
                 trace: bool = False,
                 trace_sample: float = 1.0) -> None:
        self.queue = WorkQueue(spool) if isinstance(spool, str) else spool
        if cache == "spool":
            cache = spool_cache(self.queue.directory)
        self.cache = cache
        self.registry = registry if registry is not None else default_registry()
        self.base_seed = base_seed
        self.validate = validate
        if tracer is None and trace:
            tracer = Tracer.for_spool(self.queue.directory,
                                      sample_rate=trace_sample,
                                      registry=self.queue.metrics)
        self.tracer = tracer
        #: persistent cross-submission coalescing index (see InFlightIndex)
        self.inflight = InFlightIndex(self.queue)
        self._coalesced_total = self.queue.metrics.counter(
            "repro_service_coalesced_total",
            "Duplicate submissions attached to an already in-flight task "
            "instead of enqueuing their own")

    # ------------------------------------------------------------------ submit
    def submit(self, tasks: Sequence[Union[BatchTask, AssignmentProblem]],
               method: str = "colored-ssb",
               weighting: Optional[SSBWeighting] = None,
               deadline_s: Optional[float] = None,
               **options: Any) -> Submission:
        """Prepare a sweep; nothing is enqueued until the stream pulls it.

        ``deadline_s`` gives every task a cooperative per-solve budget (the
        clock starts when a worker picks the task up, not at submission);
        anytime solvers publish their incumbent as a ``feasible`` partial
        when it fires.
        """
        normalized = []
        for task in tasks:
            if isinstance(task, BatchTask):
                normalized.append(task)
            else:
                normalized.append(BatchTask(problem=task, method=method,
                                            options=dict(options),
                                            weighting=weighting,
                                            tag=task.name,
                                            deadline_s=deadline_s))
        prepared = prepare_tasks(normalized, self.registry, self.base_seed)

        entries: List[_Entry] = []
        leaders: Dict[str, int] = {}
        for index, prep in enumerate(prepared):
            entry = _Entry(prep=prep, index=index)
            if self.cache is not None and prep.cacheable:
                cached, source = cache_get_with_source(self.cache, prep.key)
                if cached is not None:
                    entry.cached_entry = cached
                    entry.cache_source = source
            if entry.cached_entry is None:
                leader = leaders.get(prep.key)
                if leader is not None:
                    entry.leader = leader
                else:
                    leaders[prep.key] = index
            entries.append(entry)
        return Submission(entries=entries)

    def enqueue(self, submission: Submission) -> List[str]:
        """Eagerly spool every non-cached leader task (no backpressure).

        For fire-and-forget submission — results are left for the workers to
        publish; a later :meth:`stream`/:meth:`gather` (or raw
        :class:`~repro.distributed.stream.ResultStream`) can pick them up.
        A task identical to one already in flight (enqueued by a concurrent
        submission of this service) is coalesced: its entry attaches to the
        existing spool task, whose id is still returned.
        """
        task_ids: List[str] = []
        for entry in submission.entries:
            if (entry.cached_entry is None and entry.leader is None
                    and entry.task_id is None):
                task_ids.append(self._spool_entry(entry))
        return task_ids

    def _spool_entry(self, entry: _Entry,
                     payload: Optional[Dict[str, Any]] = None) -> str:
        """Spool one leader entry, coalescing onto an in-flight duplicate.

        Cacheable tasks route through the persistent :class:`InFlightIndex`:
        the spool write happens inside the index lock, so of any number of
        racing duplicate submissions exactly one creates the task and the
        rest attach to it (``entry.coalesced``).  Non-cacheable tasks —
        seedless stochastic draws — are independent samples by contract and
        never coalesce.  The payload (with its root tracing span) is built
        lazily when not supplied, so an eagerly-enqueued entry that attaches
        to an existing task opens no span of its own.
        """
        if not entry.prep.cacheable:
            entry.task_id = self.queue.submit(
                payload if payload is not None else self._payload(entry))
            return entry.task_id

        def spool() -> str:
            return self.queue.submit(
                payload if payload is not None else self._payload(entry))

        task_id, created = self.inflight.acquire(entry.prep.key, spool)
        if not created:
            entry.coalesced = True
            self._coalesced_total.inc()
        entry.task_id = task_id
        return task_id

    def _payload(self, entry: _Entry) -> Dict[str, Any]:
        """Build the spool payload, opening the task's root span when traced.

        The root span is created *before* the payload so its context rides
        along to whatever process solves the task; it stays open until the
        result comes back through :meth:`stream` (fire-and-forget submissions
        that are never streamed simply leave it unrecorded — child spans
        still share its trace id).
        """
        trace = None
        if self.tracer is not None and self.tracer.enabled:
            span = self.tracer.root("task", problem_hash=entry.prep.key,
                                    method=entry.prep.spec.name,
                                    tag=entry.prep.task.tag,
                                    index=entry.index)
            if span is not None:
                entry.span = span
                trace = span.context()
        payload = task_payload(entry.prep, validate=self.validate, trace=trace)
        payload["index"] = entry.index
        return payload

    def _finish_span(self, entry: _Entry, outcome: Dict[str, Any]) -> None:
        if entry.span is not None:
            entry.span.finish(status=outcome.get("status"),
                              ok=outcome.get("ok"),
                              objective=outcome.get("objective"),
                              cached=bool(outcome.get("cached")))
            entry.span = None

    # ------------------------------------------------------------------ stream
    def stream(self, submission: Submission,
               ordered: bool = False,
               window: Optional[int] = None,
               timeout: Optional[float] = None) -> Iterator[BatchItemResult]:
        """Yield one :class:`BatchItemResult` per submitted task.

        As-completed by default; ``ordered=True`` preserves input order.
        ``window`` bounds how many queue tasks are outstanding at once
        (backpressure: submission proceeds only as results drain).
        """
        # leaders to run on the queue, in input order; followers fan out
        leaders = [e for e in submission.entries
                   if e.cached_entry is None and e.leader is None]
        followers: Dict[int, List[_Entry]] = {}
        for entry in submission.entries:
            if entry.leader is not None:
                followers.setdefault(entry.leader, []).append(entry)

        # leaders already spooled (via enqueue) are waited on directly;
        # the rest are submitted lazily under the backpressure window
        id_to_index: Dict[str, int] = {}
        pre_submitted = []
        to_submit = []
        for entry in leaders:
            if entry.task_id is not None:
                id_to_index[entry.task_id] = entry.index
                pre_submitted.append(entry.task_id)
            else:
                to_submit.append(entry)

        def payloads() -> Iterator[Dict[str, Any]]:
            for entry in to_submit:
                yield self._payload(entry)

        def record(task_id: str, payload: Dict[str, Any]) -> None:
            id_to_index[task_id] = payload["index"]
            submission.entries[payload["index"]].task_id = task_id

        def spool(payload: Dict[str, Any]) -> str:
            # route lazy submissions through the in-flight index so
            # identical problems from concurrent submissions coalesce
            return self._spool_entry(submission.entries[payload["index"]],
                                     payload)

        stream = ResultStream(self.queue, task_ids=pre_submitted,
                              source=payloads(), window=window,
                              ordered=ordered, timeout=timeout,
                              on_submit=record, submit=spool)

        if not ordered:
            # cache hits first: they are ready by definition
            for entry in submission.entries:
                if entry.cached_entry is not None:
                    yield self._item_from_cache(entry)

        emitted: Dict[int, BatchItemResult] = {}
        position = 0

        def ordered_flush() -> Iterator[BatchItemResult]:
            nonlocal position
            while position < len(submission.entries):
                entry = submission.entries[position]
                if entry.cached_entry is not None:
                    yield self._item_from_cache(entry)
                elif entry.leader is not None and entry.leader in emitted:
                    yield self._follower_item(entry, emitted[entry.leader])
                elif entry.index in emitted:
                    yield emitted[entry.index]
                else:
                    return
                position += 1

        if ordered:
            yield from ordered_flush()
        for task_id, outcome in stream:
            index = id_to_index[task_id]
            entry = submission.entries[index]
            if entry.prep.cacheable:
                # outcome observed: later identical submissions must hit the
                # result cache (or re-solve), not chain onto this task id
                self.inflight.complete(entry.prep.key, task_id)
            item = self._item_from_outcome(entry, outcome)
            self._finish_span(entry, outcome)
            self._feed_cache(entry, outcome)
            emitted[index] = item
            if ordered:
                yield from ordered_flush()
            else:
                yield item
                for follower in followers.get(index, ()):
                    yield self._follower_item(follower, item)

    # ------------------------------------------------------------------ gather
    def gather(self, submission: Submission,
               window: Optional[int] = None,
               timeout: Optional[float] = None,
               workers: int = 0) -> BatchReport:
        """Block until every task finished; results in input order.

        ``workers`` is purely informational for the report (the service
        cannot know how many processes are pulling from the spool).
        """
        items = list(self.stream(submission, ordered=True, window=window,
                                 timeout=timeout))
        by_source = {"memory": 0, "disk": 0, "batch": 0}
        for item in items:
            if item.cached:
                source = item.cache_source or "memory"
                by_source[source] = by_source.get(source, 0) + 1
        return BatchReport(
            results=items,
            wall_s=time.perf_counter() - submission.started,
            workers=workers,
            cache_hits=sum(1 for item in items if item.cached),
            solved=sum(1 for item in items if item.ok and not item.cached),
            failed=sum(1 for item in items if not item.ok),
            cache_memory_hits=by_source["memory"],
            cache_disk_hits=by_source["disk"],
            cache_batch_hits=by_source["batch"])

    # ------------------------------------------------------------- item builds
    def _item_from_cache(self, entry: _Entry) -> BatchItemResult:
        cached = entry.cached_entry or {}
        item = self._base_item(entry)
        item.cached = True
        item.cache_source = entry.cache_source or "cache"
        item.objective = cached.get("objective")
        item.elapsed_s = cached.get("elapsed_s", 0.0)
        item.placement = dict(cached.get("placement") or {})
        item.details = dict(cached.get("details") or {})
        item.status = cached.get("status")
        self._attach_assignment(item, entry)
        return item

    def _item_from_outcome(self, entry: _Entry,
                           outcome: Dict[str, Any]) -> BatchItemResult:
        item = self._base_item(entry)
        item.status = outcome.get("status")
        item.incumbent_history = list(outcome.get("incumbent_history") or ())
        if not outcome.get("ok", False):
            item.error = outcome.get("error", "unknown error")
            if outcome.get("details"):
                # structured diagnostics riding the error envelope (e.g. a
                # FrontierExplosion's labels-created / peak-frontier counts)
                item.details = dict(outcome["details"])
            if outcome.get("error_kind"):
                # poison / quarantined / max_requeues / result_corrupted —
                # kept in details so report consumers can triage by class
                item.details = dict(item.details or {})
                item.details["error_kind"] = outcome["error_kind"]
            return item
        item.objective = outcome.get("objective")
        item.elapsed_s = outcome.get("elapsed_s", 0.0)
        item.placement = dict(outcome.get("placement") or {})
        item.details = dict(outcome.get("details") or {})
        if outcome.get("cached"):
            item.cached = True
            item.cache_source = outcome.get("cache_source") or "cache"
        self._attach_assignment(item, entry)
        return item

    def _follower_item(self, entry: _Entry,
                       leader_item: BatchItemResult) -> BatchItemResult:
        item = self._base_item(entry)
        item.error = leader_item.error
        item.status = leader_item.status
        if item.ok:
            item.objective = leader_item.objective
            item.elapsed_s = leader_item.elapsed_s
            item.placement = dict(leader_item.placement or {})
            item.details = dict(leader_item.details or {})
            item.incumbent_history = list(leader_item.incumbent_history)
            item.cached = True
            item.cache_source = "batch"
            self._attach_assignment(item, entry)
        return item

    def _base_item(self, entry: _Entry) -> BatchItemResult:
        return BatchItemResult(index=entry.index, tag=entry.prep.task.tag,
                               method=entry.prep.spec.name, key=entry.prep.key,
                               seed=entry.prep.seed)

    def _attach_assignment(self, item: BatchItemResult, entry: _Entry) -> None:
        if item.placement:
            from repro.core.assignment import Assignment

            item.assignment = Assignment(problem=entry.prep.task.problem,
                                         placement=item.placement)

    def _feed_cache(self, entry: _Entry, outcome: Dict[str, Any]) -> None:
        """Keep the submitter-side cache coherent with worker results.

        Interrupted (anytime-partial) outcomes are excluded: their objective
        is only best-so-far for *this* request's budget and must not be
        replayed as the answer to future budget-free submissions.
        """
        from repro.runtime.payload import outcome_cacheable

        if (self.cache is None or not entry.prep.cacheable
                or not outcome_cacheable(outcome) or outcome.get("cached")):
            return
        try:
            self.cache.put(entry.prep.key, make_cache_entry(
                outcome.get("method", entry.prep.spec.name),
                outcome.get("objective"), outcome.get("elapsed_s", 0.0),
                outcome.get("placement") or {}, outcome.get("details") or {},
                status=outcome.get("status")))
        except OSError:
            # cache write failed (disk full past the retry budget): the
            # result was already streamed, losing the cache copy is fine
            pass
