"""Streaming results out of the spool as they complete.

A sweep submitted to the distributed service should not block on the whole
:class:`~repro.runtime.runner.BatchReport`: the submitter wants the first
result when the first worker finishes, and a million-task sweep must not
require a million task files in flight at once.  :class:`ResultStream` is a
plain generator over the spool that provides both:

* **as-completed or ordered** — results are yielded the moment their file
  appears, or buffered and released in submission order (``ordered=True``);
* **backpressure** — with a ``window``, tasks are *submitted lazily* from
  ``source`` so that at most ``window`` of this stream's tasks are
  outstanding (submitted but not yet finished) at any time; each finished
  task tops the window back up.  A slow consumer therefore also slows
  submission — the spool never fills with more than ``window`` pending
  entries on this stream's behalf;
* **liveness** — every poll runs :meth:`WorkQueue.recover` *before* the
  deadline check, so tasks leased by a crashed worker are requeued even when
  no other worker notices — including one final recovery pass right before a
  ``timeout`` turns a wedged fleet into a :class:`StreamTimeout` instead of
  an infinite wait (a stream must never give up on a task whose expired
  lease that one pass would have requeued, nor leave the spool unrecovered
  for whoever waits next).  The poll sleep is clamped to the remaining
  deadline, so the timeout fires on time instead of overshooting by up to a
  full ``poll_interval``.

Dead-lettered tasks surface as error results (``ok=False``,
``status="error"``) rather than silently never arriving.  Anytime partials
are surfaced *distinctly from errors*: a worker that ran out of deadline
publishes its incumbent with ``ok=True``, ``status="feasible"`` and an
``"interrupted"`` marker, and the stream normalises every yielded outcome to
carry a ``status`` (``optimal`` / ``feasible`` / ``timeout`` / ``cancelled``
/ ``error``) so consumers never have to guess which kind of result they are
holding.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterable, Iterator, Optional, Tuple

from repro.distributed.spool import WorkQueue


def _normalize_status(outcome: Dict[str, Any]) -> None:
    """Ensure every published result carries a ``status``.

    Workers since the anytime refactor publish one; results from older
    workers (or hand-written spool files) default to ``"feasible"`` on
    success — a valid assignment with no proof claim — and ``"error"``
    otherwise.  A present ``status`` (e.g. ``timeout`` on a no-incumbent
    expiry) is preserved, which is what keeps feasible partials
    distinguishable from genuine failures.
    """
    if not outcome.get("status"):
        outcome["status"] = "feasible" if outcome.get("ok") else "error"


class StreamTimeout(RuntimeError):
    """Raised when a stream's overall deadline passes with tasks missing."""

    def __init__(self, missing: int, timeout: float) -> None:
        super().__init__(
            f"result stream timed out after {timeout:.3g}s with {missing} "
            f"task(s) outstanding — are any workers running against this "
            f"spool?")
        self.missing = missing


class ResultStream:
    """Iterate task results as workers publish them.

    Parameters
    ----------
    queue:
        The spool being drained by workers.
    task_ids:
        Already-submitted task ids to wait for (ordered mode yields in this
        order, interleaved with lazily submitted tasks in arrival order of
        registration).
    source:
        Optional iterable of payload dicts still to submit; consumed lazily,
        at most ``window`` at a time.  This is where backpressure comes
        from: nothing is written into the spool until the stream has room.
    window:
        Cap on this stream's outstanding (submitted, unfinished) tasks.
        ``None`` submits everything up front.
    ordered:
        Yield in registration order instead of completion order.
    timeout:
        Overall deadline in seconds; ``StreamTimeout`` when exceeded.
    submit:
        Replacement for ``queue.submit`` on the lazy-submission path —
        ``submit(payload) -> task_id``.  :class:`SolveService` passes its
        coalescing-aware spooler here so identical in-flight problems from
        concurrent submissions share one spool task.
    """

    def __init__(self, queue: WorkQueue,
                 task_ids: Iterable[str] = (),
                 source: Optional[Iterable[Dict[str, Any]]] = None,
                 window: Optional[int] = None,
                 ordered: bool = False,
                 timeout: Optional[float] = None,
                 poll_interval: Optional[float] = None,
                 on_submit: Optional[Any] = None,
                 submit: Optional[Any] = None) -> None:
        if window is not None and window < 1:
            raise ValueError("window must be >= 1")
        self.queue = queue
        self.ordered = ordered
        self.timeout = timeout
        self.poll_interval = (queue.poll_interval if poll_interval is None
                              else poll_interval)
        self.on_submit = on_submit   #: callback(task_id, payload) per lazy submit
        self.submit = submit if submit is not None else queue.submit
        self._pending: Dict[str, int] = {tid: i
                                         for i, tid in enumerate(task_ids)}
        self._next_order = len(self._pending)
        self._source = iter(source) if source is not None else None
        self._source_done = source is None
        self.window = window

    # ------------------------------------------------------------------ admin
    def add(self, task_id: str) -> None:
        """Register one more already-submitted task to wait for."""
        self._pending[task_id] = self._next_order
        self._next_order += 1

    @property
    def outstanding(self) -> int:
        """Tasks submitted through this stream and not yet yielded-ready."""
        return len(self._pending)

    def _top_up(self) -> None:
        while (not self._source_done
               and (self.window is None or len(self._pending) < self.window)):
            try:
                payload = next(self._source)
            except StopIteration:
                self._source_done = True
                return
            task_id = self.submit(payload)
            self.add(task_id)
            if self.on_submit is not None:
                self.on_submit(task_id, payload)

    # -------------------------------------------------------------- iteration
    def __iter__(self) -> Iterator[Tuple[str, Dict[str, Any]]]:
        """Yield ``(task_id, result)`` pairs; see the module docstring."""
        deadline = (None if self.timeout is None
                    else time.monotonic() + self.timeout)
        ready: Dict[int, Tuple[str, Dict[str, Any]]] = {}
        emit_cursor = 0
        while self._pending or not self._source_done or ready:
            self._top_up()
            progressed = False
            # one directory listing per scan, not one failed open() per
            # pending task — a 10k-task sweep polls a (possibly network)
            # filesystem every interval
            finished = self._pending.keys() & set(self.queue.result_ids())
            dead = ((self._pending.keys() - finished)
                    & set(self.queue.failure_ids())
                    if len(finished) < len(self._pending) else set())
            for task_id in [tid for tid in self._pending
                            if tid in finished or tid in dead]:
                if task_id in finished:
                    outcome = self.queue.result(task_id)
                    if outcome is None:
                        continue          # torn rename race; next scan has it
                    _normalize_status(outcome)
                else:
                    failure = self.queue.failure(task_id) or {}
                    outcome = {"task_id": task_id, "ok": False,
                               "status": "error",
                               "error": failure.get("error", "dead-lettered"),
                               "dead_lettered": True}
                    # typed failure class (poison / quarantined /
                    # max_requeues / result_corrupted / failed) so consumers
                    # can branch without parsing the error string
                    if failure.get("kind"):
                        outcome["error_kind"] = failure["kind"]
                    # structured diagnostics from the dead-letter record
                    # (e.g. FrontierExplosion's labels-created counts)
                    if failure.get("details"):
                        outcome["details"] = failure["details"]
                order = self._pending.pop(task_id)
                progressed = True
                if self.ordered:
                    ready[order] = (task_id, outcome)
                else:
                    yield task_id, outcome
            while self.ordered and emit_cursor in ready:
                yield ready.pop(emit_cursor)
                emit_cursor += 1
            if not self._pending and self._source_done and not ready:
                return
            if progressed:
                continue        # a finished task freed window room: no sleep
            # recovery runs BEFORE the deadline check: an expired lease is
            # requeued even on the very last pass, so the stream never times
            # out on a task one recovery would have put back — and whoever
            # polls this spool next inherits a recovered queue, not a wedge
            self.queue.recover()
            now = time.monotonic()
            if deadline is not None and now >= deadline:
                raise StreamTimeout(len(self._pending), self.timeout)
            sleep_s = self.poll_interval
            if deadline is not None:
                # clamp to the remaining budget so the timeout fires on time
                # instead of overshooting by up to a full poll interval
                sleep_s = min(sleep_s, max(deadline - now, 0.0))
            time.sleep(sleep_s)
