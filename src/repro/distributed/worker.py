"""The solve worker: pull, solve, publish, repeat.

A :class:`SolveWorker` is the unit any host contributes to the fleet: point
it at a spool directory (``repro worker --spool DIR``) and it claims tasks,
dispatches them through the same :func:`repro.runtime.payload.solve_payload`
path the batch runner uses, and publishes results back into the spool.  It
consults the shared result cache before solving (so a re-submitted sweep is
served without burning CPU) and feeds it after, and it injects the spool's
shared warm-start directory into ``colored-ssb-incremental`` tasks so every
worker benefits from every other worker's previous solve of the same tree
structure.

Crash safety comes entirely from the spool: a worker that dies mid-task
holds a lease that expires, after which :meth:`WorkQueue.recover` (run by
the surviving workers and by result streams) requeues the task.  A *live*
worker on a long solve renews its own lease from a heartbeat thread
(:class:`LeaseHeartbeat`), so a task that legitimately takes longer than
``lease_timeout`` is not spuriously requeued and double-solved — leases
bound *crash* detection latency, not solve time.

``REPRO_WORKER_SOLVE_DELAY`` (seconds, float) inserts an artificial pause
before each solve — a deterministic hook for crash-recovery and
lease-renewal tests that need to observe a worker mid-lease.
"""

from __future__ import annotations

import os
import socket
import threading
import time
import uuid
from typing import Any, Callable, Dict, Optional

from repro.core.context import SolveContext
from repro.distributed.spool import (POISON_DIR, TMP_DIR, SpoolTask,
                                     WorkQueue, _split_name, payload_trace_id)
from repro.observability import events as _events
from repro.observability.metrics import MetricsRegistry
from repro.runtime.cache import ResultCache, cache_get_with_source, make_cache_entry
from repro.runtime.payload import outcome_cacheable, solve_payload
from repro.runtime.registry import SolverRegistry, default_registry

SOLVE_DELAY_ENV_VAR = "REPRO_WORKER_SOLVE_DELAY"

#: Subdirectory of the spool holding the shared warm-start index.
WARM_DIR = "warmstarts"
#: Subdirectory of the spool holding the shared on-disk result cache.
CACHE_DIR = "cache"


def default_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:6]}"


class LeaseHeartbeat:
    """Daemon thread renewing one claim's lease while its task is solved.

    Touches the claim file every ``interval`` seconds via
    :meth:`WorkQueue.renew`; used as a context manager around the solve so
    the lease can never expire under a live worker, however long the solve
    runs.  If a renew fails (recovery already requeued the claim — e.g. the
    whole process was suspended past the lease), :attr:`lost` turns True and
    the thread stops; the worker still publishes its result, which the
    duplicate claimant will observe and retire.

    With a ``progress`` callable (returning the latest best-so-far record,
    or ``None`` when nothing changed), a beat that has fresh progress
    publishes it into the claim file via :meth:`WorkQueue.publish_progress`
    — an atomic payload+progress replace whose mtime bump doubles as the
    renewal — so any spool observer can read a long solve's incumbent.
    """

    def __init__(self, queue: WorkQueue, task: SpoolTask,
                 interval: float,
                 progress: Optional[Callable[[], Optional[Dict[str, Any]]]]
                 = None) -> None:
        if interval <= 0:
            raise ValueError("heartbeat interval must be positive")
        self._queue = queue
        self._task = task
        self._interval = interval
        self._progress = progress
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name=f"lease-heartbeat-{task.task_id}",
            daemon=True)
        self._pending_record: Optional[Dict[str, Any]] = None
        self.renewals = 0
        self.progress_published = 0
        self.lost = False

    def __enter__(self) -> "LeaseHeartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self._stop.set()
        self._thread.join()

    def _beat(self) -> bool:
        if self._progress is not None:
            record = self._progress()
            if record is None:
                record = self._pending_record    # retry a failed publish
            if record is not None:
                if self._queue.publish_progress(self._task, record):
                    self._pending_record = None
                    self.progress_published += 1
                    return True
                # progress write failed (e.g. a full spool disk): keep the
                # record for the next beat and fall back to the cheap utime
                # renewal so the lease never expires under a live solve
                self._pending_record = record
        return self._queue.renew(self._task)

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            if self._beat():
                self.renewals += 1
            elif not os.path.exists(self._task.path):
                # the claim file is really gone (requeued or acked):
                # nothing left to renew
                self.lost = True
                return
            # else: transient filesystem error (NFS ESTALE/EIO) while the
            # claim still exists — keep beating, the next renew may land


class _ProgressTracker:
    """Thread-safe bridge from solver incumbents to the heartbeat thread.

    The solve thread reports incumbents through the context callback; the
    heartbeat thread drains the latest record — :meth:`take` returns ``None``
    when nothing improved since the last publish, so idle beats stay plain
    lease renewals.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._record: Optional[Dict[str, Any]] = None
        self._count = 0

    def report(self, objective: float, payload: Any,
               source: Optional[str]) -> None:
        with self._lock:
            self._count += 1
            self._record = {"best_objective": objective,
                            "incumbents": self._count,
                            "source": source,
                            # wall-clock stamp so observers (``repro top``)
                            # can age the lease from real activity instead of
                            # the claim file's mtime, which idle renewals bump
                            "ts": time.time()}

    def take(self) -> Optional[Dict[str, Any]]:
        with self._lock:
            record, self._record = self._record, None
            return record


class SolveWorker:
    """One worker process draining a :class:`WorkQueue`.

    Parameters
    ----------
    queue:
        The spool to pull from (or a directory path).
    cache:
        Optional shared result cache, probed before and fed after each
        solve.  Pass the spool-colocated store so all workers share it.
    registry:
        Solver registry used to resolve canonical method names (for the
        warm-dir injection); solving itself goes through the facade.
    worker_id:
        Recorded in every published result; defaults to host-pid-entropy.
    poll_interval:
        Sleep between claim attempts while idle.
    heartbeat:
        Renew the claim lease from a background thread during each solve
        (default on).  Disable only in tests that need to observe lease
        expiry under a live worker.
    poison_threshold:
        Dead-letter a task once this many *previous* attempts left crash
        markers behind (see below).  The default of 2 means a task that
        hard-crashed two workers is dead-lettered before it takes down a
        third.

    **Poison-task circuit breaker.**  A task whose *solve itself* crashes
    the process (segfault in a native solver, OOM kill) never reaches the
    dead-letter path through ``max_requeues`` alone until it has crashed
    ``max_requeues + 1`` workers.  To bound the blast radius, each worker
    drops a crash marker — ``poison/<task_id>.a<attempt>.json`` — just
    before the solve and removes it just after.  A clean crash-free attempt
    leaves no marker; a hard crash leaves one that nothing cleans up.  The
    claimant of a *retry* (attempt > 0) counts leftover markers from
    earlier attempts: at ``poison_threshold`` the task is dead-lettered
    with a structured error envelope (``kind="poison"``) instead of being
    solved, so its submitter gets a typed error and the fleet keeps its
    workers.

    Anytime behaviour: a task payload's ``deadline_s`` becomes a cooperative
    :class:`~repro.core.context.SolveContext` around the solve.  With the
    heartbeat *disabled* the deadline is additionally clamped to the
    remaining lease — a solve that outlived its lease would be requeued and
    double-solved, so returning the incumbent at the lease boundary is
    strictly better; with the heartbeat on, the lease renews and no clamp
    applies.  Each heartbeat publishes the solve's best-so-far objective
    into the claim file.  :meth:`request_stop` cancels cooperatively: a task
    claimed but not yet solved is released back to the queue (requeued with
    no retry attempt consumed — never dead-lettered, however many rolling
    restarts it rides through), a solve in flight returns its incumbent.
    """

    def __init__(self, queue: "WorkQueue | str",
                 cache: Optional[ResultCache] = None,
                 registry: Optional[SolverRegistry] = None,
                 worker_id: Optional[str] = None,
                 poll_interval: float = 0.05,
                 heartbeat: bool = True,
                 metrics: Optional[MetricsRegistry] = None,
                 poison_threshold: int = 2) -> None:
        if isinstance(queue, str):
            queue = WorkQueue(queue)
        if poison_threshold < 1:
            raise ValueError("poison_threshold must be >= 1")
        self.queue = queue
        self.cache = cache
        self.registry = registry if registry is not None else default_registry()
        self.worker_id = worker_id or default_worker_id()
        self.poll_interval = poll_interval
        self.heartbeat = heartbeat
        self.poison_threshold = poison_threshold
        #: renew cadence: well inside the lease so several beats fit into
        #: one timeout even under heavy filesystem latency
        self.heartbeat_interval = max(0.01, queue.lease_timeout / 4.0)
        self.processed = 0
        self.cache_hits = 0
        self.lease_renewals = 0
        self.stop_event = threading.Event()
        self._solve_delay = float(os.environ.get(SOLVE_DELAY_ENV_VAR, "0") or 0)
        #: shares the spool's registry by default so one snapshot covers both
        self.metrics = metrics if metrics is not None else queue.metrics
        self._tasks_total = self.metrics.counter(
            "repro_worker_tasks_total",
            "Tasks handled by this worker, by outcome "
            "(solved/cached/released)")
        self._cache_hits_total = self.metrics.counter(
            "repro_worker_cache_hits_total",
            "Pre-solve result-cache hits by tier the entry came from")
        self._renewals_total = self.metrics.counter(
            "repro_worker_lease_renewals_total",
            "Lease heartbeat renewals across all solves")
        self._solve_seconds = self.metrics.histogram(
            "repro_solve_seconds",
            "Wall-clock solve latency by solver method and final status")

    def _event(self, kind: str, task_id: str, **fields: Any) -> None:
        if self.queue.events is not None:
            self.queue.events.emit(kind, task_id=task_id,
                                   worker_id=self.worker_id, **fields)

    def request_stop(self) -> None:
        """Cooperatively stop: claimed-but-unsolved tasks are requeued and
        any in-flight anytime solve returns its incumbent."""
        self.stop_event.set()

    # -------------------------------------------------------------- main loop
    def run(self, max_tasks: Optional[int] = None, drain: bool = False,
            timeout: Optional[float] = None) -> int:
        """Process tasks until a stop condition; returns the number handled.

        ``drain=True`` exits as soon as no task is claimable (after expired
        leases were recovered); otherwise the worker polls until ``max_tasks``
        or ``timeout`` is reached.
        """
        started = time.monotonic()
        handled = 0
        while max_tasks is None or handled < max_tasks:
            if self.stop_event.is_set():
                break
            remaining = None
            if timeout is not None:
                remaining = timeout - (time.monotonic() - started)
                if remaining <= 0:
                    break
            if drain:
                task = self.queue.claim(block=False)
                if task is None:
                    break
            else:
                task = self.queue.claim(
                    block=True,
                    timeout=(min(1.0, remaining) if remaining is not None
                             else 1.0))
                if task is None:
                    continue
            if self.process(task) is None:
                break           # stop requested between claim and solve
            handled += 1
        return handled

    # ---------------------------------------------------------------- one task
    def process(self, task: SpoolTask) -> Optional[Dict[str, Any]]:
        """Solve one claimed task and publish its outcome.

        Returns ``None`` — after nacking the task back into the queue — when
        a stop was requested before the solve started: the claim-to-ack
        window must requeue, never dead-letter, on cooperative shutdown.
        """
        if self.stop_event.is_set():
            self.queue.release(task)    # no attempt consumed: never solved
            self._tasks_total.inc(outcome="released")
            return None
        payload = dict(task.payload)
        # let downstream spans (solve/method) carry the spool task id instead
        # of falling back to the cache key, so audit joins line up exactly
        payload.setdefault("task_id", task.task_id)
        trace_id = payload_trace_id(payload)
        trace_field = {"trace_id": trace_id} if trace_id else {}
        poisoned = self._poison_check(task)
        if poisoned is not None:
            return poisoned
        outcome = self._cached_outcome(payload)
        if outcome is not None:
            self._event(_events.EVENT_CACHE_HIT, task.task_id,
                        source=outcome.get("cache_source"), **trace_field)
            self._tasks_total.inc(outcome="cached")
        else:
            self._event(_events.EVENT_SOLVE_START, task.task_id,
                        method=payload.get("method"),
                        attempt=task.attempt, **trace_field)
            solve_started = time.monotonic()
            self._mark_crash(task)
            try:
                if self.heartbeat:
                    progress = _ProgressTracker()
                    context = self._task_context(payload, progress)
                    with LeaseHeartbeat(self.queue, task,
                                        self.heartbeat_interval,
                                        progress=progress.take) as beat:
                        outcome = self._solve(payload, context)
                    self.lease_renewals += beat.renewals
                    if beat.renewals:
                        self._renewals_total.inc(beat.renewals)
                else:
                    outcome = self._solve(payload,
                                          self._task_context(payload, None))
            finally:
                # a hard crash (SIGKILL, segfault) never reaches this, which
                # is exactly how the marker survives to incriminate the task
                self._unmark_crash(task)
            solve_elapsed = time.monotonic() - solve_started
            self._solve_seconds.observe(
                solve_elapsed,
                method=str(outcome.get("method") or payload.get("method")),
                status=str(outcome.get("status") or
                           ("ok" if outcome.get("ok") else "error")))
            self._event(_events.EVENT_SOLVE_END, task.task_id,
                        method=outcome.get("method"),
                        status=outcome.get("status"),
                        ok=outcome.get("ok"),
                        objective=outcome.get("objective"),
                        elapsed_s=solve_elapsed, **trace_field)
            if (self.stop_event.is_set() and not outcome.get("ok")
                    and outcome.get("status") == "cancelled"):
                # the stop landed after the claim check but before the
                # solver's first incumbent: nothing was produced, so the
                # task goes back to the queue (same contract as the
                # claimed-but-unsolved window — no attempt consumed), not
                # into results as a terminal failure
                self.queue.release(task)
                self._tasks_total.inc(outcome="released")
                return None
            self._tasks_total.inc(outcome="solved")
            if (self.cache is not None and payload.get("cacheable", True)
                    and outcome_cacheable(outcome)):
                try:
                    self.cache.put(payload["key"], make_cache_entry(
                        outcome["method"], outcome["objective"],
                        outcome["elapsed_s"], outcome["placement"],
                        outcome["details"], status=outcome.get("status")))
                except OSError:
                    # cache unavailable (disk full, I/O errors past the
                    # retry budget): the solve result still ships
                    pass
        outcome["worker_id"] = self.worker_id
        outcome["tag"] = payload.get("tag")
        outcome["seed"] = payload.get("seed")
        outcome["index"] = payload.get("index")
        try:
            self.queue.ack(task, outcome)
        except OSError:
            # even the retried result write failed (e.g. the spool disk is
            # full): hand the task back so a later attempt — here or on
            # another worker — can publish; recovery covers us if even the
            # nack rename fails
            self.queue.nack(task)
            self._tasks_total.inc(outcome="ack_failed")
            self.processed += 1
            return outcome
        self.processed += 1
        return outcome

    # ------------------------------------------------------- poison breaker
    def _poison_dir(self) -> str:
        return os.path.join(self.queue.directory, POISON_DIR)

    def _marker_path(self, task: SpoolTask) -> str:
        return os.path.join(self._poison_dir(),
                            f"{task.task_id}.a{task.attempt}.json")

    def _crash_markers(self, task: SpoolTask) -> int:
        """Markers left by *earlier* attempts that never finished their solve."""
        try:
            names = self.queue.fs.listdir(self._poison_dir())
        except OSError:
            return 0
        count = 0
        for name in names:
            parts = _split_name(name)
            if (parts is not None and parts["task_id"] == task.task_id
                    and parts["attempt"] < task.attempt):
                count += 1
        return count

    def _mark_crash(self, task: SpoolTask) -> None:
        """Drop the crash marker; best-effort (a failed write just weakens
        the breaker by one attempt, it must never block the solve)."""
        try:
            self.queue.fs.write_json_atomic(
                self._marker_path(task),
                {"task_id": task.task_id, "attempt": task.attempt,
                 "worker_id": self.worker_id},
                tmp_dir=os.path.join(self.queue.directory, TMP_DIR))
        except OSError:
            pass

    def _unmark_crash(self, task: SpoolTask) -> None:
        try:
            self.queue.fs.unlink(self._marker_path(task))
        except OSError:
            pass

    def _clear_markers(self, task: SpoolTask) -> None:
        """Remove every marker for a task once its fate is sealed."""
        try:
            names = self.queue.fs.listdir(self._poison_dir())
        except OSError:
            return
        for name in names:
            parts = _split_name(name)
            if parts is not None and parts["task_id"] == task.task_id:
                try:
                    self.queue.fs.unlink(
                        os.path.join(self._poison_dir(), name))
                except OSError:
                    pass

    def _poison_check(self, task: SpoolTask) -> Optional[Dict[str, Any]]:
        """Dead-letter a repeat crasher before it takes down this worker.

        Returns the typed error outcome when the breaker trips, ``None``
        when the task is safe to solve.  Only retries (attempt > 0) can
        trip: a first delivery has no history to judge.
        """
        if task.attempt == 0:
            return None
        markers = self._crash_markers(task)
        if markers < self.poison_threshold:
            return None
        error = (f"poison task: {markers} previous attempt(s) crashed their "
                 f"worker mid-solve (threshold {self.poison_threshold}); "
                 f"dead-lettered without solving")
        trace_id = payload_trace_id(task.payload)
        trace_field = {"trace_id": trace_id} if trace_id else {}
        self.queue.fail(task, error=error, kind="poison",
                        crash_markers=markers, worker_id=self.worker_id,
                        **trace_field)
        self._event(_events.EVENT_POISON, task.task_id,
                    attempt=task.attempt, crash_markers=markers,
                    **trace_field)
        self._clear_markers(task)
        self._tasks_total.inc(outcome="poisoned")
        self.processed += 1
        return {"task_id": task.task_id, "ok": False, "status": "error",
                "error": error, "error_kind": "poison"}

    def _task_context(self, payload: Dict[str, Any],
                      progress: Optional[_ProgressTracker]
                      ) -> Optional[SolveContext]:
        """The task's cooperative context: payload deadline, lease clamp,
        worker stop token, progress wiring.

        With the heartbeat on, the lease renews under the solve, so only the
        payload's own ``deadline_s`` applies; with it off, the deadline is
        clamped to the lease timeout — past that the task would be requeued
        and double-solved anyway.
        """
        deadline_s = payload.get("deadline_s")
        if deadline_s is not None and not self.heartbeat:
            # without renewals the lease is a hard wall: solving past it gets
            # the task requeued and double-solved, so the incumbent at the
            # lease boundary is strictly the better answer
            deadline_s = min(deadline_s, self.queue.lease_timeout)
        if (deadline_s is None and progress is None
                and not self.stop_event.is_set()):
            # inert context for a budget-less solve: skip the allocation so
            # the no-deadline path stays exactly the historical one
            return None
        return SolveContext(
            deadline_s=deadline_s,
            cancel=self.stop_event,
            on_incumbent=progress.report if progress is not None else None)

    def _solve(self, payload: Dict[str, Any],
               context: Optional[SolveContext] = None) -> Dict[str, Any]:
        if self._solve_delay:
            time.sleep(self._solve_delay)
        self._inject_warm_dir(payload)
        outcome = solve_payload(payload, context=context)
        outcome["cached"] = False
        return outcome

    def _cached_outcome(self, payload: Dict[str, Any]
                        ) -> Optional[Dict[str, Any]]:
        if self.cache is None or not payload.get("cacheable", True):
            return None
        entry, source = cache_get_with_source(self.cache, payload["key"])
        if entry is None:
            return None
        self.cache_hits += 1
        self._cache_hits_total.inc(source=str(source))
        outcome = {
            "key": payload["key"],
            "ok": True,
            "method": entry.get("method", payload.get("method")),
            "objective": entry.get("objective"),
            "elapsed_s": entry.get("elapsed_s", 0.0),
            "placement": dict(entry.get("placement") or {}),
            "details": dict(entry.get("details") or {}),
            "cached": True,
            "cache_source": source,
        }
        if entry.get("status"):
            outcome["status"] = entry["status"]
        return outcome

    def _inject_warm_dir(self, payload: Dict[str, Any]) -> None:
        """Point incremental tasks at the spool's shared warm-start index."""
        try:
            canonical = self.registry.canonical_name(payload.get("method", ""))
        except Exception:  # noqa: BLE001 - unknown method fails in solve_payload
            return
        if canonical != "colored-ssb-incremental":
            return
        options = dict(payload.get("options") or {})
        if "warm_dir" not in options and "index" not in options:
            options["warm_dir"] = os.path.join(self.queue.directory, WARM_DIR)
            payload["options"] = options


def spool_cache(spool_directory: str):
    """The spool-colocated tiered result cache every worker should share."""
    from repro.runtime.cache import (JSONFileCache, LRUResultCache,
                                     TieredResultCache)

    return TieredResultCache(
        memory=LRUResultCache(),
        disk=JSONFileCache(os.path.join(spool_directory, CACHE_DIR)))
