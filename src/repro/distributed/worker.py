"""The solve worker: pull, solve, publish, repeat.

A :class:`SolveWorker` is the unit any host contributes to the fleet: point
it at a spool directory (``repro worker --spool DIR``) and it claims tasks,
dispatches them through the same :func:`repro.runtime.payload.solve_payload`
path the batch runner uses, and publishes results back into the spool.  It
consults the shared result cache before solving (so a re-submitted sweep is
served without burning CPU) and feeds it after, and it injects the spool's
shared warm-start directory into ``colored-ssb-incremental`` tasks so every
worker benefits from every other worker's previous solve of the same tree
structure.

Crash safety comes entirely from the spool: a worker that dies mid-task
holds a lease that expires, after which :meth:`WorkQueue.recover` (run by
the surviving workers and by result streams) requeues the task.

``REPRO_WORKER_SOLVE_DELAY`` (seconds, float) inserts an artificial pause
before each solve — a deterministic hook for crash-recovery tests and demos
that need to observe a worker mid-lease.
"""

from __future__ import annotations

import os
import socket
import time
import uuid
from typing import Any, Dict, Optional

from repro.distributed.spool import SpoolTask, WorkQueue
from repro.runtime.cache import ResultCache, cache_get_with_source, make_cache_entry
from repro.runtime.payload import solve_payload
from repro.runtime.registry import SolverRegistry, default_registry

SOLVE_DELAY_ENV_VAR = "REPRO_WORKER_SOLVE_DELAY"

#: Subdirectory of the spool holding the shared warm-start index.
WARM_DIR = "warmstarts"
#: Subdirectory of the spool holding the shared on-disk result cache.
CACHE_DIR = "cache"


def default_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:6]}"


class SolveWorker:
    """One worker process draining a :class:`WorkQueue`.

    Parameters
    ----------
    queue:
        The spool to pull from (or a directory path).
    cache:
        Optional shared result cache, probed before and fed after each
        solve.  Pass the spool-colocated store so all workers share it.
    registry:
        Solver registry used to resolve canonical method names (for the
        warm-dir injection); solving itself goes through the facade.
    worker_id:
        Recorded in every published result; defaults to host-pid-entropy.
    poll_interval:
        Sleep between claim attempts while idle.
    """

    def __init__(self, queue: "WorkQueue | str",
                 cache: Optional[ResultCache] = None,
                 registry: Optional[SolverRegistry] = None,
                 worker_id: Optional[str] = None,
                 poll_interval: float = 0.05) -> None:
        if isinstance(queue, str):
            queue = WorkQueue(queue)
        self.queue = queue
        self.cache = cache
        self.registry = registry if registry is not None else default_registry()
        self.worker_id = worker_id or default_worker_id()
        self.poll_interval = poll_interval
        self.processed = 0
        self.cache_hits = 0
        self._solve_delay = float(os.environ.get(SOLVE_DELAY_ENV_VAR, "0") or 0)

    # -------------------------------------------------------------- main loop
    def run(self, max_tasks: Optional[int] = None, drain: bool = False,
            timeout: Optional[float] = None) -> int:
        """Process tasks until a stop condition; returns the number handled.

        ``drain=True`` exits as soon as no task is claimable (after expired
        leases were recovered); otherwise the worker polls until ``max_tasks``
        or ``timeout`` is reached.
        """
        started = time.monotonic()
        handled = 0
        while max_tasks is None or handled < max_tasks:
            remaining = None
            if timeout is not None:
                remaining = timeout - (time.monotonic() - started)
                if remaining <= 0:
                    break
            if drain:
                task = self.queue.claim(block=False)
                if task is None:
                    break
            else:
                task = self.queue.claim(
                    block=True,
                    timeout=(min(1.0, remaining) if remaining is not None
                             else 1.0))
                if task is None:
                    continue
            self.process(task)
            handled += 1
        return handled

    # ---------------------------------------------------------------- one task
    def process(self, task: SpoolTask) -> Dict[str, Any]:
        """Solve one claimed task and publish its outcome."""
        payload = dict(task.payload)
        outcome = self._cached_outcome(payload)
        if outcome is None:
            if self._solve_delay:
                time.sleep(self._solve_delay)
            self._inject_warm_dir(payload)
            outcome = solve_payload(payload)
            outcome["cached"] = False
            if (outcome.get("ok") and self.cache is not None
                    and payload.get("cacheable", True)):
                self.cache.put(payload["key"], make_cache_entry(
                    outcome["method"], outcome["objective"],
                    outcome["elapsed_s"], outcome["placement"],
                    outcome["details"]))
        outcome["worker_id"] = self.worker_id
        outcome["tag"] = payload.get("tag")
        outcome["seed"] = payload.get("seed")
        outcome["index"] = payload.get("index")
        self.queue.ack(task, outcome)
        self.processed += 1
        return outcome

    def _cached_outcome(self, payload: Dict[str, Any]
                        ) -> Optional[Dict[str, Any]]:
        if self.cache is None or not payload.get("cacheable", True):
            return None
        entry, source = cache_get_with_source(self.cache, payload["key"])
        if entry is None:
            return None
        self.cache_hits += 1
        return {
            "key": payload["key"],
            "ok": True,
            "method": entry.get("method", payload.get("method")),
            "objective": entry.get("objective"),
            "elapsed_s": entry.get("elapsed_s", 0.0),
            "placement": dict(entry.get("placement") or {}),
            "details": dict(entry.get("details") or {}),
            "cached": True,
            "cache_source": source,
        }

    def _inject_warm_dir(self, payload: Dict[str, Any]) -> None:
        """Point incremental tasks at the spool's shared warm-start index."""
        try:
            canonical = self.registry.canonical_name(payload.get("method", ""))
        except Exception:  # noqa: BLE001 - unknown method fails in solve_payload
            return
        if canonical != "colored-ssb-incremental":
            return
        options = dict(payload.get("options") or {})
        if "warm_dir" not in options and "index" not in options:
            options["warm_dir"] = os.path.join(self.queue.directory, WARM_DIR)
            payload["options"] = options


def spool_cache(spool_directory: str):
    """The spool-colocated tiered result cache every worker should share."""
    from repro.runtime.cache import (JSONFileCache, LRUResultCache,
                                     TieredResultCache)

    return TieredResultCache(
        memory=LRUResultCache(),
        disk=JSONFileCache(os.path.join(spool_directory, CACHE_DIR)))
