"""The solve worker: pull, solve, publish, repeat.

A :class:`SolveWorker` is the unit any host contributes to the fleet: point
it at a spool directory (``repro worker --spool DIR``) and it claims tasks,
dispatches them through the same :func:`repro.runtime.payload.solve_payload`
path the batch runner uses, and publishes results back into the spool.  It
consults the shared result cache before solving (so a re-submitted sweep is
served without burning CPU) and feeds it after, and it injects the spool's
shared warm-start directory into ``colored-ssb-incremental`` tasks so every
worker benefits from every other worker's previous solve of the same tree
structure.

Crash safety comes entirely from the spool: a worker that dies mid-task
holds a lease that expires, after which :meth:`WorkQueue.recover` (run by
the surviving workers and by result streams) requeues the task.  A *live*
worker on a long solve renews its own lease from a heartbeat thread
(:class:`LeaseHeartbeat`), so a task that legitimately takes longer than
``lease_timeout`` is not spuriously requeued and double-solved — leases
bound *crash* detection latency, not solve time.

``REPRO_WORKER_SOLVE_DELAY`` (seconds, float) inserts an artificial pause
before each solve — a deterministic hook for crash-recovery and
lease-renewal tests that need to observe a worker mid-lease.
"""

from __future__ import annotations

import os
import socket
import threading
import time
import uuid
from typing import Any, Dict, Optional

from repro.distributed.spool import SpoolTask, WorkQueue
from repro.runtime.cache import ResultCache, cache_get_with_source, make_cache_entry
from repro.runtime.payload import solve_payload
from repro.runtime.registry import SolverRegistry, default_registry

SOLVE_DELAY_ENV_VAR = "REPRO_WORKER_SOLVE_DELAY"

#: Subdirectory of the spool holding the shared warm-start index.
WARM_DIR = "warmstarts"
#: Subdirectory of the spool holding the shared on-disk result cache.
CACHE_DIR = "cache"


def default_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:6]}"


class LeaseHeartbeat:
    """Daemon thread renewing one claim's lease while its task is solved.

    Touches the claim file every ``interval`` seconds via
    :meth:`WorkQueue.renew`; used as a context manager around the solve so
    the lease can never expire under a live worker, however long the solve
    runs.  If a renew fails (recovery already requeued the claim — e.g. the
    whole process was suspended past the lease), :attr:`lost` turns True and
    the thread stops; the worker still publishes its result, which the
    duplicate claimant will observe and retire.
    """

    def __init__(self, queue: WorkQueue, task: SpoolTask,
                 interval: float) -> None:
        if interval <= 0:
            raise ValueError("heartbeat interval must be positive")
        self._queue = queue
        self._task = task
        self._interval = interval
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name=f"lease-heartbeat-{task.task_id}",
            daemon=True)
        self.renewals = 0
        self.lost = False

    def __enter__(self) -> "LeaseHeartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self._stop.set()
        self._thread.join()

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            if self._queue.renew(self._task):
                self.renewals += 1
            elif not os.path.exists(self._task.path):
                # the claim file is really gone (requeued or acked):
                # nothing left to renew
                self.lost = True
                return
            # else: transient filesystem error (NFS ESTALE/EIO) while the
            # claim still exists — keep beating, the next renew may land


class SolveWorker:
    """One worker process draining a :class:`WorkQueue`.

    Parameters
    ----------
    queue:
        The spool to pull from (or a directory path).
    cache:
        Optional shared result cache, probed before and fed after each
        solve.  Pass the spool-colocated store so all workers share it.
    registry:
        Solver registry used to resolve canonical method names (for the
        warm-dir injection); solving itself goes through the facade.
    worker_id:
        Recorded in every published result; defaults to host-pid-entropy.
    poll_interval:
        Sleep between claim attempts while idle.
    heartbeat:
        Renew the claim lease from a background thread during each solve
        (default on).  Disable only in tests that need to observe lease
        expiry under a live worker.
    """

    def __init__(self, queue: "WorkQueue | str",
                 cache: Optional[ResultCache] = None,
                 registry: Optional[SolverRegistry] = None,
                 worker_id: Optional[str] = None,
                 poll_interval: float = 0.05,
                 heartbeat: bool = True) -> None:
        if isinstance(queue, str):
            queue = WorkQueue(queue)
        self.queue = queue
        self.cache = cache
        self.registry = registry if registry is not None else default_registry()
        self.worker_id = worker_id or default_worker_id()
        self.poll_interval = poll_interval
        self.heartbeat = heartbeat
        #: renew cadence: well inside the lease so several beats fit into
        #: one timeout even under heavy filesystem latency
        self.heartbeat_interval = max(0.01, queue.lease_timeout / 4.0)
        self.processed = 0
        self.cache_hits = 0
        self.lease_renewals = 0
        self._solve_delay = float(os.environ.get(SOLVE_DELAY_ENV_VAR, "0") or 0)

    # -------------------------------------------------------------- main loop
    def run(self, max_tasks: Optional[int] = None, drain: bool = False,
            timeout: Optional[float] = None) -> int:
        """Process tasks until a stop condition; returns the number handled.

        ``drain=True`` exits as soon as no task is claimable (after expired
        leases were recovered); otherwise the worker polls until ``max_tasks``
        or ``timeout`` is reached.
        """
        started = time.monotonic()
        handled = 0
        while max_tasks is None or handled < max_tasks:
            remaining = None
            if timeout is not None:
                remaining = timeout - (time.monotonic() - started)
                if remaining <= 0:
                    break
            if drain:
                task = self.queue.claim(block=False)
                if task is None:
                    break
            else:
                task = self.queue.claim(
                    block=True,
                    timeout=(min(1.0, remaining) if remaining is not None
                             else 1.0))
                if task is None:
                    continue
            self.process(task)
            handled += 1
        return handled

    # ---------------------------------------------------------------- one task
    def process(self, task: SpoolTask) -> Dict[str, Any]:
        """Solve one claimed task and publish its outcome."""
        payload = dict(task.payload)
        outcome = self._cached_outcome(payload)
        if outcome is None:
            if self.heartbeat:
                with LeaseHeartbeat(self.queue, task,
                                    self.heartbeat_interval) as beat:
                    outcome = self._solve(payload)
                self.lease_renewals += beat.renewals
            else:
                outcome = self._solve(payload)
            if (outcome.get("ok") and self.cache is not None
                    and payload.get("cacheable", True)):
                self.cache.put(payload["key"], make_cache_entry(
                    outcome["method"], outcome["objective"],
                    outcome["elapsed_s"], outcome["placement"],
                    outcome["details"]))
        outcome["worker_id"] = self.worker_id
        outcome["tag"] = payload.get("tag")
        outcome["seed"] = payload.get("seed")
        outcome["index"] = payload.get("index")
        self.queue.ack(task, outcome)
        self.processed += 1
        return outcome

    def _solve(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        if self._solve_delay:
            time.sleep(self._solve_delay)
        self._inject_warm_dir(payload)
        outcome = solve_payload(payload)
        outcome["cached"] = False
        return outcome

    def _cached_outcome(self, payload: Dict[str, Any]
                        ) -> Optional[Dict[str, Any]]:
        if self.cache is None or not payload.get("cacheable", True):
            return None
        entry, source = cache_get_with_source(self.cache, payload["key"])
        if entry is None:
            return None
        self.cache_hits += 1
        return {
            "key": payload["key"],
            "ok": True,
            "method": entry.get("method", payload.get("method")),
            "objective": entry.get("objective"),
            "elapsed_s": entry.get("elapsed_s", 0.0),
            "placement": dict(entry.get("placement") or {}),
            "details": dict(entry.get("details") or {}),
            "cached": True,
            "cache_source": source,
        }

    def _inject_warm_dir(self, payload: Dict[str, Any]) -> None:
        """Point incremental tasks at the spool's shared warm-start index."""
        try:
            canonical = self.registry.canonical_name(payload.get("method", ""))
        except Exception:  # noqa: BLE001 - unknown method fails in solve_payload
            return
        if canonical != "colored-ssb-incremental":
            return
        options = dict(payload.get("options") or {})
        if "warm_dir" not in options and "index" not in options:
            options["warm_dir"] = os.path.join(self.queue.directory, WARM_DIR)
            payload["options"] = options


def spool_cache(spool_directory: str):
    """The spool-colocated tiered result cache every worker should share."""
    from repro.runtime.cache import (JSONFileCache, LRUResultCache,
                                     TieredResultCache)

    return TieredResultCache(
        memory=LRUResultCache(),
        disk=JSONFileCache(os.path.join(spool_directory, CACHE_DIR)))
