"""Wire protocol for the solve gateway: HTTP/1.1 framing and request schema.

The gateway speaks plain HTTP+JSON (plus Server-Sent Events for progress
streaming) over asyncio streams, with no third-party server framework — the
deployment story is "a Python interpreter and a shared filesystem", same as
the workers.  This module owns everything about the wire:

* :func:`read_request` — a small, strict HTTP/1.1 request parser over an
  :class:`asyncio.StreamReader`.  Strict is the point: oversize request
  lines, header floods and oversize bodies are rejected *while reading*,
  before a byte of JSON is parsed, so malformed or abusive traffic cannot
  balloon gateway memory (this is the first layer of admission control);
* :func:`response` / :func:`json_response` — response framing.  Every
  response carries an explicit ``Content-Length`` and honours
  ``Connection: keep-alive`` so benchmark clients can reuse sockets;
* :func:`sse_preamble` / :func:`sse_event` — Server-Sent-Events framing for
  the incumbent-progress stream (``Connection: close``, no length: the
  stream ends when the solve does);
* :func:`parse_solve_request` — schema validation for ``POST /v1/solve``
  bodies, normalising user input into one :class:`SolveRequest` and turning
  every malformed field into a :class:`ProtocolError` with a client-facing
  message (a 4xx, never a stack trace).
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

#: hard framing limits (first layer of admission control)
MAX_REQUEST_LINE = 8 * 1024
MAX_HEADER_COUNT = 64
MAX_HEADER_LINE = 8 * 1024
DEFAULT_MAX_BODY = 4 * 1024 * 1024

STATUS_PHRASES = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class ProtocolError(Exception):
    """A client error that maps straight onto an HTTP status."""

    def __init__(self, status: int, message: str,
                 headers: Optional[Dict[str, str]] = None) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = dict(headers or {})


@dataclass
class HttpRequest:
    """One parsed request: enough HTTP for a JSON API, nothing more."""

    method: str
    path: str                          #: path only, query string stripped
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)  #: lowercase keys
    body: bytes = b""

    def json(self) -> Any:
        try:
            return json.loads(self.body.decode("utf-8") or "null")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(400, f"invalid JSON body: {exc}") from exc

    def wants_sse(self) -> bool:
        return "text/event-stream" in self.headers.get("accept", "")


async def _read_line(reader: asyncio.StreamReader, limit: int) -> bytes:
    line = await reader.readline()
    if len(line) > limit:
        raise ProtocolError(400, "request line or header too long")
    return line


async def read_request(reader: asyncio.StreamReader,
                       max_body: int = DEFAULT_MAX_BODY
                       ) -> Optional[HttpRequest]:
    """Parse one HTTP/1.1 request; ``None`` on a clean EOF between requests.

    Only what a JSON API needs is supported: ``Content-Length`` bodies (no
    chunked uploads), no continuation headers.  Violations raise
    :class:`ProtocolError` with a 4xx status for the caller to serialise.
    """
    request_line = await _read_line(reader, MAX_REQUEST_LINE)
    if not request_line:
        return None                        # client closed between requests
    parts = request_line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ProtocolError(400, "malformed request line")
    method, target, _version = parts
    path, _, query_string = target.partition("?")
    query: Dict[str, str] = {}
    for pair in query_string.split("&"):
        if pair:
            key, _, value = pair.partition("=")
            query[key] = value
    headers: Dict[str, str] = {}
    while True:
        line = await _read_line(reader, MAX_HEADER_LINE)
        if line in (b"\r\n", b"\n", b""):
            break
        if len(headers) >= MAX_HEADER_COUNT:
            raise ProtocolError(400, "too many headers")
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise ProtocolError(400, "malformed header line")
        headers[name.strip().lower()] = value.strip()
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise ProtocolError(400, "malformed Content-Length") from None
        if length < 0:
            raise ProtocolError(400, "malformed Content-Length")
        if length > max_body:
            raise ProtocolError(413, f"body exceeds {max_body} bytes")
        body = await reader.readexactly(length)
    elif headers.get("transfer-encoding"):
        raise ProtocolError(400, "chunked request bodies are not supported")
    return HttpRequest(method=method.upper(), path=path, query=query,
                       headers=headers, body=body)


def response(status: int, body: bytes,
             content_type: str = "application/json",
             headers: Optional[Dict[str, str]] = None,
             keep_alive: bool = True) -> bytes:
    phrase = STATUS_PHRASES.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {phrase}",
             f"Content-Type: {content_type}",
             f"Content-Length: {len(body)}",
             f"Connection: {'keep-alive' if keep_alive else 'close'}"]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def json_response(status: int, payload: Any,
                  headers: Optional[Dict[str, str]] = None,
                  keep_alive: bool = True) -> bytes:
    body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    return response(status, body, headers=headers, keep_alive=keep_alive)


def error_response(error: ProtocolError) -> bytes:
    # framing errors leave the connection in an unknown state: always close
    return json_response(error.status, {"error": error.message},
                         headers=error.headers, keep_alive=False)


def sse_preamble() -> bytes:
    """Response head for an event stream (unknown length ⇒ close delimits)."""
    return (b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-store\r\n"
            b"Connection: close\r\n\r\n")


def sse_event(event: str, payload: Any) -> bytes:
    data = json.dumps(payload, sort_keys=True)
    return f"event: {event}\ndata: {data}\n\n".encode("utf-8")


# ----------------------------------------------------------- request schema
@dataclass
class SolveRequest:
    """A validated ``POST /v1/solve`` body."""

    problem_json: str                  #: canonical serialised instance
    method: str = "colored-ssb"
    options: Dict[str, Any] = field(default_factory=dict)
    deadline_s: Optional[float] = None  #: per-solve budget on the worker
    timeout_s: Optional[float] = None   #: how long this request will wait
    stream: bool = False                #: SSE progress instead of one JSON


def _positive_number(body: Dict[str, Any], key: str) -> Optional[float]:
    value = body.get(key)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError(400, f"'{key}' must be a number")
    if value <= 0:
        raise ProtocolError(400, f"'{key}' must be > 0")
    return float(value)


def parse_solve_request(request: HttpRequest) -> SolveRequest:
    """Validate a solve body into a :class:`SolveRequest` (400 on any flaw).

    The problem itself is round-tripped through the model deserialiser by
    the gateway (which owns the registry); here we only require that
    ``problem`` is a JSON object and re-serialise it canonically.
    """
    body = request.json()
    if not isinstance(body, dict):
        raise ProtocolError(400, "body must be a JSON object")
    problem = body.get("problem")
    if not isinstance(problem, dict):
        raise ProtocolError(400, "'problem' must be a JSON object "
                                 "(serialised assignment instance)")
    method = body.get("method", "colored-ssb")
    if not isinstance(method, str) or not method:
        raise ProtocolError(400, "'method' must be a non-empty string")
    options = body.get("options", {})
    if not isinstance(options, dict):
        raise ProtocolError(400, "'options' must be a JSON object")
    stream = body.get("stream", False)
    if not isinstance(stream, bool):
        raise ProtocolError(400, "'stream' must be a boolean")
    return SolveRequest(
        problem_json=json.dumps(problem, sort_keys=True),
        method=method,
        options=dict(options),
        deadline_s=_positive_number(body, "deadline_s"),
        timeout_s=_positive_number(body, "timeout_s"),
        stream=stream or request.wants_sse())
