"""The solve gateway: an asyncio HTTP front door over the worker fleet.

Everything below ``POST /v1/solve`` already existed — :class:`SolveService`
prepares and coalesces tasks, the spool brokers them, workers solve and
publish.  What was missing is the thing that stands between *clients* and
the spool: admission control, fairness, and a network protocol.  The
gateway adds exactly that, with no dependency beyond the standard library:

* **admission control** — a hard cap on concurrently-waiting solve
  requests (503 + ``repro_gateway_shed_total{reason="capacity"}``), on top
  of the protocol layer's framing limits;
* **per-client rate limits** — one token bucket per client id (the
  ``X-Client-Id`` header, else the peer address); an empty bucket is a 429
  with ``Retry-After`` so well-behaved clients back off instead of spinning;
* **request coalescing** — identical problems from concurrent clients meet
  in the :class:`~repro.distributed.service.InFlightIndex` of the shard
  that owns their canonical hash and share one spool task; every attached
  request is counted in ``repro_gateway_coalesced_total`` and all of them
  stream the single result;
* **sharding + failover** — a :class:`~repro.distributed.spool.ShardRouter`
  consistent-hashes each problem across N spool directories.  While a
  request waits, the gateway runs the lease-recovery sweep (a worker that
  died mid-solve has its task requeued, no client action needed) and
  periodically re-probes shard health; a request waiting on a shard that
  goes unhealthy is transparently resubmitted to the next healthy shard
  (``repro_gateway_failover_total``);
* **progress streaming** — ``"stream": true`` (or ``Accept:
  text/event-stream``) turns the response into Server-Sent Events replaying
  the best-so-far incumbents that anytime solves publish into their claim
  file, filtered to strictly improving objectives, terminated by a
  ``result`` event.

Endpoints::

    GET  /healthz       liveness + per-shard health
    GET  /metrics       Prometheus exposition of the process registry
    GET  /v1/shards     shard table: directory, healthy, occupancy
    POST /v1/solve      solve one instance (JSON in; JSON or SSE out)
    GET  /v1/tasks/ID   poll a task: state, progress, result

The server is single-threaded asyncio; spool operations are local-
filesystem metadata calls (fractions of a millisecond), so they run inline
rather than through an executor — the simplicity is worth more than the
microseconds, and the benchmark holds the throughput bar honest.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.distributed.protocol import (
    HttpRequest,
    ProtocolError,
    SolveRequest,
    error_response,
    json_response,
    parse_solve_request,
    read_request,
    sse_event,
    sse_preamble,
)
from repro.distributed.service import SolveService, _Entry
from repro.distributed.spool import ShardRouter, SpoolError, WorkQueue
from repro.model.problem import AssignmentProblem
from repro.model.serialization import problem_from_json
from repro.observability.tracing import Tracer
from repro.runtime.registry import SolverRegistry
from repro.runtime.runner import BatchTask


class TokenBucket:
    """Classic token bucket: ``burst`` capacity refilled at ``rate``/s."""

    __slots__ = ("rate", "burst", "tokens", "updated")

    def __init__(self, rate: float, burst: float,
                 now: Optional[float] = None) -> None:
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.updated = time.monotonic() if now is None else now

    def try_take(self, now: Optional[float] = None) -> Tuple[bool, float]:
        """``(allowed, retry_after_s)`` — retry_after is 0 when allowed."""
        now = time.monotonic() if now is None else now
        self.tokens = min(self.burst,
                          self.tokens + (now - self.updated) * self.rate)
        self.updated = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True, 0.0
        return False, (1.0 - self.tokens) / self.rate


class ClientLimiter:
    """Per-client token buckets with a bounded client table (LRU evict)."""

    def __init__(self, rate: float, burst: float,
                 max_clients: int = 10_000) -> None:
        self.rate = rate
        self.burst = burst
        self.max_clients = max_clients
        self._buckets: Dict[str, TokenBucket] = {}

    def check(self, client: str) -> Tuple[bool, float]:
        bucket = self._buckets.pop(client, None)
        if bucket is None:
            bucket = TokenBucket(self.rate, self.burst)
            while len(self._buckets) >= self.max_clients:
                # oldest-touched client first (dict preserves insert order)
                self._buckets.pop(next(iter(self._buckets)))
        self._buckets[client] = bucket      # re-insert = touch
        return bucket.try_take()


@dataclass
class GatewayConfig:
    """Tunables for one gateway process."""

    host: str = "127.0.0.1"
    port: int = 0                       #: 0 = ephemeral (bound port printed)
    rate_per_client: Optional[float] = None   #: requests/s; None disables
    burst_per_client: float = 10.0
    max_inflight: int = 256             #: concurrent waiting solve requests
    max_body_bytes: int = 4 * 1024 * 1024
    default_timeout_s: float = 120.0    #: per-request wait budget
    poll_interval: float = 0.02         #: result-poll cadence while waiting
    recover_interval: float = 0.25      #: min spacing of lease-recovery sweeps
    probe_interval: float = 1.0         #: min spacing of shard health probes
    vanish_polls: int = 3               #: consecutive misses ⇒ task vanished


class Gateway:
    """Serve solve requests over HTTP, brokered through sharded spools.

    Parameters
    ----------
    shards:
        Spool directories (or prebuilt :class:`WorkQueue` instances — tests
        pass these to control lease timeouts).  One :class:`SolveService`
        per shard keeps each shard's in-flight coalescing index exactly
        where its duplicates land, because the router sends a given problem
        hash to one shard deterministically.
    """

    def __init__(self, shards: Sequence[Union[str, WorkQueue]],
                 config: Optional[GatewayConfig] = None,
                 registry: Optional[SolverRegistry] = None,
                 tracer: Optional[Tracer] = None,
                 cache: Any = "spool") -> None:
        if not shards:
            raise ValueError("gateway needs at least one spool shard")
        self.config = config or GatewayConfig()
        self.queues: List[WorkQueue] = [
            shard if isinstance(shard, WorkQueue) else WorkQueue(shard)
            for shard in shards]
        self.router = ShardRouter(self.queues)
        self.services: List[SolveService] = [
            SolveService(queue, cache=cache, registry=registry,
                         tracer=tracer) for queue in self.queues]
        self.tracer = tracer
        self.metrics = self.queues[0].metrics
        self._requests_total = self.metrics.counter(
            "repro_gateway_requests_total",
            "Gateway HTTP requests by route and status code")
        self._request_seconds = self.metrics.histogram(
            "repro_gateway_request_seconds",
            "Gateway request wall time by route")
        self._coalesced_total = self.metrics.counter(
            "repro_gateway_coalesced_total",
            "Solve requests attached to an identical in-flight solve")
        self._shed_total = self.metrics.counter(
            "repro_gateway_shed_total",
            "Requests rejected before solving (rate limit, capacity)")
        self._inflight_gauge = self.metrics.gauge(
            "repro_gateway_inflight",
            "Solve requests currently waiting on a result")
        self._failover_total = self.metrics.counter(
            "repro_gateway_failover_total",
            "Waiting solves resubmitted after their shard went unhealthy")
        self._limiter = (ClientLimiter(self.config.rate_per_client,
                                       self.config.burst_per_client)
                         if self.config.rate_per_client else None)
        self._inflight = 0
        self._last_recover = 0.0
        self._last_probe = 0.0
        self.port: Optional[int] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()

    # -------------------------------------------------------------- lifecycle
    async def _open(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def _serve(self) -> None:
        await self._open()
        print(f"gateway listening on http://{self.config.host}:{self.port} "
              f"({len(self.queues)} shard(s))", flush=True)
        async with self._server:
            await self._server.serve_forever()

    def serve_forever(self) -> None:
        """Run the gateway on this thread until interrupted (CLI path)."""
        try:
            asyncio.run(self._serve())
        except KeyboardInterrupt:
            pass

    def start_background(self) -> "Gateway":
        """Run the server on a daemon thread; returns once the port is bound."""

        def run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            loop.run_until_complete(self._open())
            self._started.set()
            try:
                loop.run_forever()
            finally:
                self._server.close()
                loop.run_until_complete(self._server.wait_closed())
                to_cancel = asyncio.all_tasks(loop)
                for task in to_cancel:
                    task.cancel()
                if to_cancel:
                    loop.run_until_complete(
                        asyncio.gather(*to_cancel, return_exceptions=True))
                loop.close()

        self._thread = threading.Thread(target=run, daemon=True,
                                        name="repro-gateway")
        self._thread.start()
        if not self._started.wait(timeout=10.0):
            raise RuntimeError("gateway failed to bind within 10s")
        return self

    def stop(self) -> None:
        if self._loop is not None and self._thread is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=10.0)
            self._loop = None
            self._thread = None

    # ------------------------------------------------------------ connection
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        peer = writer.get_extra_info("peername")
        peer_host = peer[0] if isinstance(peer, tuple) else str(peer)
        try:
            while True:
                try:
                    request = await read_request(
                        reader, max_body=self.config.max_body_bytes)
                except ProtocolError as exc:
                    self._count(route="other", code=exc.status)
                    writer.write(error_response(exc))
                    await writer.drain()
                    return
                except (asyncio.IncompleteReadError, ConnectionError):
                    return
                if request is None:
                    return
                keep_alive = await self._dispatch(request, writer, peer_host)
                await writer.drain()
                if not keep_alive:
                    return
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _count(self, route: str, code: int) -> None:
        self._requests_total.inc(route=route, code=str(code))

    async def _dispatch(self, request: HttpRequest,
                        writer: asyncio.StreamWriter,
                        peer_host: str) -> bool:
        """Route one request; returns whether to keep the connection."""
        started = time.monotonic()
        route = "other"
        try:
            if request.path == "/healthz" and request.method == "GET":
                route = "healthz"
                writer.write(self._healthz())
            elif request.path == "/metrics" and request.method == "GET":
                route = "metrics"
                writer.write(_plain(
                    200, self.metrics.to_prometheus().encode("utf-8")))
            elif request.path == "/v1/shards" and request.method == "GET":
                route = "shards"
                writer.write(self._shards())
            elif request.path.startswith("/v1/tasks/") \
                    and request.method == "GET":
                route = "tasks"
                writer.write(self._task_status(
                    request.path[len("/v1/tasks/"):]))
            elif request.path == "/v1/solve":
                route = "solve"
                if request.method != "POST":
                    raise ProtocolError(405, "use POST /v1/solve")
                return await self._solve(request, writer, peer_host, started)
            else:
                raise ProtocolError(404, f"no such endpoint: {request.path}")
            self._count(route, 200)
            return True
        except ProtocolError as exc:
            self._count(route, exc.status)
            writer.write(error_response(exc))
            return False
        except Exception as exc:       # noqa: BLE001 — boundary of the server
            self._count(route, 500)
            writer.write(error_response(
                ProtocolError(500, f"internal error: {exc}")))
            return False
        finally:
            self._request_seconds.observe(time.monotonic() - started,
                                          route=route)

    # ---------------------------------------------------------- small routes
    def _healthz(self) -> bytes:
        healthy = self.router.healthy_indices()
        return json_response(200 if healthy else 503, {
            "ok": bool(healthy),
            "shards": len(self.queues),
            "healthy_shards": len(healthy),
            "inflight": self._inflight,
        })

    def _shards(self) -> bytes:
        table = []
        for index, queue in enumerate(self.queues):
            entry: Dict[str, Any] = {
                "index": index,
                "directory": queue.directory,
                "healthy": self.router.is_healthy(index),
            }
            try:
                entry["counts"] = queue.counts()
            except OSError:
                entry["counts"] = None
            table.append(entry)
        return json_response(200, {"shards": table})

    def _task_status(self, task_id: str) -> bytes:
        if not task_id:
            raise ProtocolError(404, "missing task id")
        shard = self.router.find_task(task_id)
        if shard is None:
            raise ProtocolError(404, f"unknown task: {task_id}")
        queue = self.queues[shard]
        outcome = queue.result(task_id)
        if outcome is not None:
            return json_response(200, {"task_id": task_id, "shard": shard,
                                       "state": "done", "result": outcome})
        failure = queue.failure(task_id)
        if failure is not None:
            return json_response(200, {"task_id": task_id, "shard": shard,
                                       "state": "failed", "failure": failure})
        return json_response(200, {"task_id": task_id, "shard": shard,
                                   "state": "running",
                                   "progress": queue.progress(task_id)})

    # ---------------------------------------------------------------- solve
    async def _solve(self, request: HttpRequest,
                     writer: asyncio.StreamWriter, peer_host: str,
                     started: float) -> bool:
        # shed *before* touching the body: a rejected request should cost
        # the gateway as close to nothing as possible
        client = request.headers.get("x-client-id", peer_host)
        if self._limiter is not None:
            allowed, retry_after = self._limiter.check(client)
            if not allowed:
                self._shed_total.inc(reason="rate")
                self._count("solve", 429)
                writer.write(json_response(
                    429, {"error": "rate limit exceeded",
                          "retry_after_s": round(retry_after, 3)},
                    headers={"Retry-After": f"{max(retry_after, 0.001):.3f}"},
                    keep_alive=False))
                return False
        if self._inflight >= self.config.max_inflight:
            self._shed_total.inc(reason="capacity")
            self._count("solve", 503)
            writer.write(json_response(
                503, {"error": "gateway at capacity"},
                headers={"Retry-After": "1"}, keep_alive=False))
            return False

        solve = parse_solve_request(request)
        try:
            problem = problem_from_json(solve.problem_json)
        except (ValueError, KeyError, TypeError) as exc:
            raise ProtocolError(400, f"invalid problem: {exc}") from exc

        self._inflight += 1
        self._inflight_gauge.set(self._inflight)
        span = (self.tracer.root("gateway.solve", client=client)
                if self.tracer is not None else None)
        try:
            envelope = await self._solve_and_wait(problem, solve, writer,
                                                  started)
            if envelope is not None:            # non-SSE: one JSON response
                self._count("solve", 200)
                writer.write(json_response(200, envelope))
            if span is not None:
                span.finish(status="ok")
            return envelope is not None          # SSE closes the connection
        except ProtocolError:
            if span is not None:
                span.finish(status="error")
            raise
        finally:
            self._inflight -= 1
            self._inflight_gauge.set(self._inflight)

    def _submit(self, problem: AssignmentProblem,
                solve: SolveRequest) -> Tuple[int, Optional[str],
                                              _Entry, SolveService]:
        """Route + submit one problem; ``(shard, task_id, entry, service)``.

        ``task_id`` is ``None`` on a cache hit (nothing was spooled).  The
        shard's :class:`SolveService` does the heavy lifting: cache probe,
        canonical key, and cross-client coalescing through its in-flight
        index.
        """
        task = BatchTask(problem=problem, method=solve.method,
                         options=dict(solve.options), tag=problem.name,
                         deadline_s=solve.deadline_s)
        # route on the instance identity so identical problems from
        # different clients meet in the same shard's in-flight index
        # (prepare_tasks computes the canonical key; routing on the
        # serialised problem is equivalent for shard placement)
        shard = self.router.route(solve.problem_json + ":" + solve.method)
        service = self.services[shard]
        submission = service.submit([task])
        entry = submission.entries[0]
        if entry.cached_entry is not None:
            return shard, None, entry, service
        service.enqueue(submission)
        if entry.coalesced:
            self._coalesced_total.inc()
        return shard, entry.task_id, entry, service

    async def _solve_and_wait(self, problem: AssignmentProblem,
                              solve: SolveRequest,
                              writer: asyncio.StreamWriter,
                              started: float) -> Optional[Dict[str, Any]]:
        """Submit and wait for the outcome; returns the JSON envelope, or
        ``None`` after writing an SSE stream (stream responses are written
        here, terminal JSON responses by the caller)."""
        try:
            shard, task_id, entry, service = self._submit(problem, solve)
        except SpoolError as exc:
            raise ProtocolError(503, str(exc)) from exc

        sse = solve.stream
        if sse:
            writer.write(sse_preamble())
            writer.write(sse_event("task", {
                "task_id": task_id, "shard": shard,
                "coalesced": entry.coalesced,
                "cached": entry.cached_entry is not None}))
            await writer.drain()

        if entry.cached_entry is not None:
            envelope = self._envelope_from_cache(entry, shard)
            return await self._finish(envelope, sse, writer)

        timeout = solve.timeout_s or self.config.default_timeout_s
        deadline = started + timeout
        queue = service.queue
        last_best: Optional[float] = None
        missing_polls = 0
        while True:
            outcome = failure = None
            try:
                outcome = queue.result(task_id)
                if outcome is None:
                    failure = queue.failure(task_id)
            except OSError:
                self.router.probe()    # a sick shard: re-judge immediately
            if outcome is not None:
                if entry.prep.cacheable:
                    service.inflight.complete(entry.prep.key, task_id)
                service._feed_cache(entry, outcome)
                service._finish_span(entry, outcome)
                return await self._finish(
                    self._envelope_from_outcome(outcome, task_id, shard,
                                                entry), sse, writer)
            if failure is not None:
                if entry.prep.cacheable:
                    service.inflight.complete(entry.prep.key, task_id)
                service._finish_span(entry, {"status": "error", "ok": False})
                envelope = {"task_id": task_id, "shard": shard, "ok": False,
                            "status": "error",
                            "error": failure.get("error", "dead-lettered"),
                            "error_kind": failure.get("kind"),
                            "coalesced": entry.coalesced}
                return await self._finish(envelope, sse, writer)

            if sse:
                record = None
                try:
                    record = queue.progress(task_id)
                except OSError:
                    pass
                best = (record or {}).get("best_objective")
                if (isinstance(best, (int, float))
                        and (last_best is None or best < last_best)):
                    # strictly improving incumbents only: heartbeat
                    # republishes are dropped, regressions cannot happen
                    last_best = float(best)
                    writer.write(sse_event("progress", {
                        "task_id": task_id,
                        "best_objective": last_best,
                        "incumbents": record.get("incumbents"),
                        "source": record.get("source")}))
                    await writer.drain()

            self._maybe_recover()
            self._maybe_probe()
            if not self.router.is_healthy(shard):
                shard, task_id, entry, service, queue = self._failover(
                    problem, solve, shard, sse, writer)
                if sse:
                    await writer.drain()
                last_best = None       # new task: replay improvements fresh
                missing_polls = 0
                continue
            # a task with no artifact anywhere (not pending, not claimed,
            # no result, no dead-letter) was lost to external cleanup; one
            # listing can race the claim rename, so require consecutive
            # misses before resubmitting
            try:
                live = queue.task_live(task_id)
            except OSError:
                live = False
            missing_polls = 0 if live else missing_polls + 1
            if missing_polls >= self.config.vanish_polls:
                shard, task_id, entry, service, queue = self._failover(
                    problem, solve, shard, sse, writer, vanished=True)
                if sse:
                    await writer.drain()
                last_best = None
                missing_polls = 0
                continue

            now = time.monotonic()
            if now >= deadline:
                if entry.prep.cacheable and task_id is not None:
                    service.inflight.complete(entry.prep.key, task_id)
                if sse:
                    writer.write(sse_event("error", {
                        "error": f"request timed out after {timeout:.3g}s",
                        "task_id": task_id}))
                    await writer.drain()
                    self._count("solve", 504)
                    return None
                raise ProtocolError(
                    504, f"solve did not finish within {timeout:.3g}s "
                         f"(task {task_id} may still complete; poll "
                         f"/v1/tasks/{task_id})")
            await asyncio.sleep(
                min(self.config.poll_interval, max(deadline - now, 0.0)))

    def _failover(self, problem: AssignmentProblem, solve: SolveRequest,
                  dead_shard: int, sse: bool,
                  writer: asyncio.StreamWriter, vanished: bool = False
                  ) -> Tuple[int, Optional[str], _Entry, SolveService,
                             WorkQueue]:
        """Resubmit a waiting solve to the next healthy shard."""
        self._failover_total.inc()
        if vanished:
            # the shard is fine but the task is gone — re-route will land
            # on the same shard and enqueue a fresh task
            self.router.probe()
        try:
            shard, task_id, entry, service = self._submit(problem, solve)
        except SpoolError as exc:
            raise ProtocolError(503, str(exc)) from exc
        if sse:
            writer.write(sse_event("failover", {
                "from_shard": dead_shard, "to_shard": shard,
                "task_id": task_id, "vanished": vanished}))
        return shard, task_id, entry, service, service.queue

    async def _finish(self, envelope: Dict[str, Any], sse: bool,
                      writer: asyncio.StreamWriter
                      ) -> Optional[Dict[str, Any]]:
        if not sse:
            return envelope
        writer.write(sse_event("result", envelope))
        await writer.drain()
        self._count("solve", 200)
        return None

    # ------------------------------------------------------------- envelopes
    @staticmethod
    def _envelope_from_cache(entry: _Entry, shard: int) -> Dict[str, Any]:
        cached = entry.cached_entry or {}
        return {"task_id": None, "shard": shard, "ok": True,
                "status": cached.get("status") or "feasible",
                "objective": cached.get("objective"),
                "placement": dict(cached.get("placement") or {}),
                "elapsed_s": cached.get("elapsed_s", 0.0),
                "cached": True, "cache_source": entry.cache_source,
                "coalesced": False}

    @staticmethod
    def _envelope_from_outcome(outcome: Dict[str, Any], task_id: str,
                               shard: int, entry: _Entry) -> Dict[str, Any]:
        envelope = {"task_id": task_id, "shard": shard,
                    "ok": bool(outcome.get("ok")),
                    "status": outcome.get("status")
                    or ("feasible" if outcome.get("ok") else "error"),
                    "cached": bool(outcome.get("cached")),
                    "coalesced": entry.coalesced}
        if envelope["ok"]:
            envelope["objective"] = outcome.get("objective")
            envelope["placement"] = dict(outcome.get("placement") or {})
            envelope["elapsed_s"] = outcome.get("elapsed_s", 0.0)
        else:
            envelope["error"] = outcome.get("error", "unknown error")
        return envelope

    # ------------------------------------------------------------ fleet beat
    def _maybe_recover(self) -> None:
        now = time.monotonic()
        if now - self._last_recover >= self.config.recover_interval:
            self._last_recover = now
            try:
                self.router.recover_all()
            except OSError:
                self.router.probe()

    def _maybe_probe(self) -> None:
        now = time.monotonic()
        if now - self._last_probe >= self.config.probe_interval:
            self._last_probe = now
            self.router.probe()


def _plain(status: int, body: bytes) -> bytes:
    from repro.distributed.protocol import response

    return response(status, body, content_type="text/plain; version=0.0.4")
