"""Distributed solve service.

The batch runtime (:mod:`repro.runtime`) fans a sweep across the processes
of *one* machine and blocks for the whole report.  This package turns the
same prepared tasks into an always-on, multi-host service with nothing but a
shared filesystem as infrastructure:

* :mod:`~repro.distributed.spool` — :class:`WorkQueue`, a durable
  filesystem-backed broker: atomic claim/ack/requeue, lease timeouts and
  crash recovery, so any number of ``repro worker`` processes on any host
  sharing the spool directory can pull tasks;
* :mod:`~repro.distributed.worker` — :class:`SolveWorker`, the pull/solve/
  publish loop dispatching through the solver registry and the shared
  tiered result cache;
* :mod:`~repro.distributed.stream` — :class:`ResultStream`, generator-based
  iteration over results as they complete (or in submission order), with a
  backpressure window bounding in-flight tasks;
* :mod:`~repro.distributed.service` — :class:`SolveService`, the submitter
  facade: same task preparation, cache keys and seeds as the
  :class:`~repro.runtime.runner.BatchRunner`, execution by the worker fleet,
  with cross-submission duplicate coalescing through an
  :class:`InFlightIndex`;
* :mod:`~repro.distributed.gateway` / :mod:`~repro.distributed.protocol` —
  :class:`Gateway`, the asyncio HTTP front door: admission control,
  per-client token-bucket rate limits, request coalescing on the canonical
  problem hash, consistent-hash sharding across spool directories
  (:class:`~repro.distributed.spool.ShardRouter`) with recovery-based
  failover, and SSE streaming of incumbent progress;
* :mod:`~repro.distributed.incremental` — structure fingerprints and
  :class:`IncrementalSolver`: re-submitted instances whose tree structure is
  unchanged (only profiles/costs drifted) warm-start the label engine from
  the previous optimum;
* :mod:`~repro.distributed.janitor` — :class:`CacheJanitor`, size/age-capped
  LRU eviction keeping million-entry on-disk stores bounded;
* :mod:`~repro.distributed.faults` — :class:`FaultPlan` / :class:`FaultyFS`,
  seeded deterministic filesystem fault injection (ENOSPC, EIO, torn writes,
  corruption, hangs, clock skew) behind the
  :class:`~repro.runtime.fsio.FilesystemAdapter` seam every store routes
  through;
* :mod:`~repro.distributed.chaos` — :func:`run_chaos`, the harness running a
  live fleet under a fault plan and asserting the standing exactly-once /
  no-crash / metered-transition invariants.
"""

from repro.distributed.chaos import ChaosReport, run_chaos
from repro.distributed.faults import FaultPlan, FaultRule, FaultyFS
from repro.distributed.gateway import Gateway, GatewayConfig, TokenBucket
from repro.distributed.incremental import (
    IncrementalSolver,
    WarmStartIndex,
    structure_fingerprint,
)
from repro.distributed.janitor import CacheJanitor, JanitorReport, sweep_stale_tmp
from repro.distributed.service import InFlightIndex, SolveService, Submission
from repro.distributed.spool import (
    ShardRouter,
    SpoolTask,
    WorkQueue,
    new_task_id,
)
from repro.distributed.stream import ResultStream, StreamTimeout
from repro.distributed.worker import SolveWorker, spool_cache

__all__ = [
    "CacheJanitor",
    "ChaosReport",
    "FaultPlan",
    "FaultRule",
    "FaultyFS",
    "Gateway",
    "GatewayConfig",
    "InFlightIndex",
    "IncrementalSolver",
    "JanitorReport",
    "ResultStream",
    "ShardRouter",
    "SolveService",
    "SolveWorker",
    "SpoolTask",
    "StreamTimeout",
    "Submission",
    "TokenBucket",
    "WarmStartIndex",
    "WorkQueue",
    "new_task_id",
    "run_chaos",
    "spool_cache",
    "structure_fingerprint",
    "sweep_stale_tmp",
]
