"""Discrete-event simulation of the host-satellites system.

The paper evaluates assignments analytically: the end-to-end delay of a
partition equals the SSB weight of its path in the coloured assignment graph.
The authors' target platform (MobiHealth sensor boxes talking to a PDA) is
not available, so this subpackage provides the *executable* counterpart: a
small discrete-event simulator that runs an assigned CRU tree on a modelled
star network and measures the delay of one context frame.

Two timing policies are supported:

* ``barrier`` (default) reproduces the paper's §3 assumption — the host only
  starts processing once *every* satellite has delivered — so the simulated
  delay equals the analytic delay exactly (experiment E9);
* ``eager`` relaxes the assumption to per-CRU precedence (a host CRU starts
  as soon as its own inputs are available), quantifying how conservative the
  paper's model is (ablation benchmark).
"""

from repro.simulation.events import Event, EventQueue
from repro.simulation.engine import Simulator
from repro.simulation.network import StarNetwork, TransferRecord
from repro.simulation.executor import ExecutionPolicy, SimulationRun, simulate_assignment
from repro.simulation.pipeline import FrameRecord, PipelineRun, simulate_pipeline
from repro.simulation.trace import TraceEvent, ExecutionTrace
from repro.simulation.metrics import SimulationMetrics, compute_metrics

__all__ = [
    "Event",
    "EventQueue",
    "Simulator",
    "StarNetwork",
    "TransferRecord",
    "ExecutionPolicy",
    "SimulationRun",
    "simulate_assignment",
    "FrameRecord",
    "PipelineRun",
    "simulate_pipeline",
    "TraceEvent",
    "ExecutionTrace",
    "SimulationMetrics",
    "compute_metrics",
]
