"""Star-network link model.

Each satellite owns one uplink to the host.  The executor charges transfers
either to the satellite device itself (paper-faithful: the sensor box is busy
while transmitting) or to a dedicated link resource (a refinement where the
radio and the CPU overlap); the :class:`StarNetwork` keeps the per-link
resources and records every transfer for the trace and the metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.model.platform import HostSatelliteSystem
from repro.simulation.engine import DeviceResource, Simulator


@dataclass(frozen=True)
class TransferRecord:
    """One completed transfer over a host-satellite link."""

    satellite_id: str
    payload: str                 #: description, e.g. the tree edge "CRU6->CRU3"
    duration: float
    start_time: float
    end_time: float


class StarNetwork:
    """Per-satellite uplink resources plus a transfer log."""

    def __init__(self, simulator: Simulator, system: HostSatelliteSystem,
                 dedicated_links: bool = False) -> None:
        self.simulator = simulator
        self.system = system
        self.dedicated_links = dedicated_links
        self._links: Dict[str, DeviceResource] = {
            sid: DeviceResource(simulator, name=f"link:{sid}")
            for sid in system.satellite_ids()
        }
        self.transfers: List[TransferRecord] = []

    def link_resource(self, satellite_id: str) -> DeviceResource:
        return self._links[satellite_id]

    def transfer(self, satellite_id: str, payload: str, duration: float,
                 carrier: Optional[DeviceResource],
                 on_delivered: Callable[[float], None]) -> None:
        """Ship one frame from a satellite to the host.

        ``carrier`` is the resource that is kept busy by the transmission: the
        satellite's own device in the paper-faithful model, or the dedicated
        link resource when ``dedicated_links`` is enabled.
        """
        if satellite_id not in self._links:
            raise KeyError(f"unknown satellite {satellite_id!r}")
        resource = carrier if carrier is not None else self._links[satellite_id]
        start_holder = {"start": None}

        def record_start() -> None:
            start_holder["start"] = self.simulator.now

        # submitting through the resource serialises the transfer behind the
        # satellite's other work, which is exactly the paper's cost model
        def delivered(end_time: float) -> None:
            start = end_time - duration
            self.transfers.append(TransferRecord(
                satellite_id=satellite_id,
                payload=payload,
                duration=duration,
                start_time=start,
                end_time=end_time,
            ))
            on_delivered(end_time)

        record_start()
        resource.submit(name=f"transfer:{payload}", duration=duration,
                        on_complete=delivered)

    def total_transfer_time(self, satellite_id: Optional[str] = None) -> float:
        """Total time spent transferring (optionally for one satellite)."""
        return sum(t.duration for t in self.transfers
                   if satellite_id is None or t.satellite_id == satellite_id)

    def transfer_count(self) -> int:
        return len(self.transfers)
