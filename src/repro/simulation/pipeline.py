"""Pipelined (multi-frame) execution of an assigned CRU tree.

The paper replaces Bokhari's SB objective (bottleneck processing time) by the
SSB objective (end-to-end delay of one frame) because context-aware
applications care about reaction latency.  Bokhari's objective is still the
right one for *throughput*: when frames arrive continuously, the devices
pipeline successive frames and the sustainable frame rate is limited by the
busiest device.

This module runs a stream of frames through an assignment and measures both
quantities, so the SSB-vs-SB comparison (experiment E8) can be grounded in an
executable model rather than formulas alone:

* the **latency** of a frame is the time from its release to the completion
  of its root CRU — for the first frame under the paper's barrier policy this
  equals the analytic end-to-end delay;
* the **throughput** is the number of completed frames divided by the
  makespan; for long streams it converges to ``1 / bottleneck_time`` of the
  assignment (each device processes frame k+1 while the others handle
  neighbouring frames).

The implementation reuses the single-frame device/network machinery: each
device processes its per-frame work in frame order, a frame's work on a
device can only start once the frame's inputs reached that device, and the
host waits for all of a frame's deliveries (barrier policy) before starting
that frame's host work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.assignment import Assignment, HOST_DEVICE
from repro.model.problem import AssignmentProblem


@dataclass(frozen=True)
class FrameRecord:
    """Timing of one frame pushed through the pipeline."""

    frame_index: int
    release_time: float
    completion_time: float

    @property
    def latency(self) -> float:
        return self.completion_time - self.release_time


@dataclass
class PipelineRun:
    """Result of streaming several frames through an assignment."""

    problem: AssignmentProblem
    assignment: Assignment
    frames: List[FrameRecord]
    device_busy_times: Dict[str, float]
    makespan: float

    @property
    def frame_count(self) -> int:
        return len(self.frames)

    def latencies(self) -> List[float]:
        return [f.latency for f in self.frames]

    def mean_latency(self) -> float:
        lat = self.latencies()
        return sum(lat) / len(lat) if lat else 0.0

    def max_latency(self) -> float:
        return max(self.latencies(), default=0.0)

    def first_frame_latency(self) -> float:
        return self.frames[0].latency if self.frames else 0.0

    def throughput(self) -> float:
        """Completed frames per unit time over the whole run."""
        if self.makespan <= 0:
            return 0.0
        return self.frame_count / self.makespan

    def steady_state_period(self) -> float:
        """Average spacing between consecutive frame completions after warm-up.

        For long streams this converges to the assignment's bottleneck time
        (Bokhari's objective).
        """
        if self.frame_count < 2:
            return self.frames[0].latency if self.frames else 0.0
        completions = [f.completion_time for f in self.frames]
        spacings = [b - a for a, b in zip(completions, completions[1:])]
        tail = spacings[len(spacings) // 2:]   # ignore the fill phase
        return sum(tail) / len(tail)


def simulate_pipeline(problem: AssignmentProblem, assignment: Assignment,
                      frames: int = 10, release_period: float = 0.0) -> PipelineRun:
    """Stream ``frames`` context frames through an assigned CRU tree.

    Parameters
    ----------
    problem, assignment:
        The instance and a feasible placement.
    frames:
        Number of frames to push through the pipeline.
    release_period:
        Spacing between sensor frame releases.  ``0`` (default) releases the
        next frame as soon as the sources can accept it (back-pressure mode),
        which measures the maximum sustainable throughput.

    Notes
    -----
    Devices process work in frame order (frame *k*'s work on a device before
    frame *k+1*'s), matching the FIFO behaviour of the single-frame executor;
    within a frame the paper's barrier assumption applies on the host.
    """
    errors = assignment.feasibility_errors()
    if errors:
        raise ValueError("cannot simulate an infeasible assignment: " + "; ".join(errors))
    if frames < 1:
        raise ValueError("frames must be at least 1")
    if release_period < 0:
        raise ValueError("release_period must be non-negative")

    # Per-frame per-device work, derived once from the assignment:
    host_work = assignment.host_load()
    satellite_work = assignment.satellite_loads()

    # Event-free analytic pipeline: device d can start frame k's work only
    # after (a) it finished frame k-1's work and (b) the frame was released.
    # The host additionally waits for every satellite's frame-k delivery.
    device_ready: Dict[str, float] = {sid: 0.0 for sid in satellite_work}
    host_ready = 0.0
    busy: Dict[str, float] = {sid: 0.0 for sid in satellite_work}
    busy[HOST_DEVICE] = 0.0

    records: List[FrameRecord] = []
    for k in range(frames):
        release = k * release_period
        # satellites work in parallel on frame k
        satellite_done: Dict[str, float] = {}
        for sid, work in satellite_work.items():
            start = max(device_ready[sid], release)
            done = start + work
            device_ready[sid] = done
            busy[sid] += work
            satellite_done[sid] = done
        barrier = max(satellite_done.values()) if satellite_done else release
        start_host = max(host_ready, barrier)
        completion = start_host + host_work
        host_ready = completion
        busy[HOST_DEVICE] += host_work
        records.append(FrameRecord(frame_index=k, release_time=release,
                                   completion_time=completion))

    makespan = records[-1].completion_time if records else 0.0
    return PipelineRun(problem=problem, assignment=assignment, frames=records,
                       device_busy_times=busy, makespan=makespan)
