"""The discrete-event engine and single-server device resources.

The engine is a classic event-driven simulator: a clock, a time-ordered event
queue, and ``run()`` which pops events until the queue drains (or a horizon /
event budget is reached).  :class:`DeviceResource` models one device (the
host or a satellite) as a single server with a FIFO job queue — the paper's
devices execute one CRU (or one uplink transmission) at a time.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.simulation.events import Event, EventQueue


class Simulator:
    """Minimal deterministic discrete-event simulator."""

    def __init__(self) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._processed = 0

    # ---------------------------------------------------------------- clock
    @property
    def now(self) -> float:
        return self._now

    @property
    def processed_events(self) -> int:
        return self._processed

    # ------------------------------------------------------------- schedule
    def schedule_at(self, time: float, kind: str, callback: Callable[[], None],
                    priority: int = 0) -> Event:
        if time < self._now - 1e-12:
            raise ValueError(f"cannot schedule in the past ({time} < {self._now})")
        event = Event(time=max(time, self._now), kind=kind, callback=callback,
                      priority=priority)
        self._queue.push(event)
        return event

    def schedule_after(self, delay: float, kind: str, callback: Callable[[], None],
                       priority: int = 0) -> Event:
        if delay < 0:
            raise ValueError("delay must be non-negative")
        return self.schedule_at(self._now + delay, kind, callback, priority=priority)

    # ------------------------------------------------------------------ run
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Process events until the queue drains (or a limit is hit).

        Returns the simulation time after the last processed event.
        """
        while self._queue:
            next_time = self._queue.peek_time()
            assert next_time is not None
            if until is not None and next_time > until:
                self._now = until
                break
            if max_events is not None and self._processed >= max_events:
                break
            event = self._queue.pop()
            self._now = event.time
            self._processed += 1
            event.fire()
        return self._now


@dataclass
class _Job:
    name: str
    duration: float
    on_complete: Optional[Callable[[float], None]]


class DeviceResource:
    """A single-server FIFO resource (one CPU, or one CPU + radio, per device).

    Jobs submitted while the device is busy wait in arrival order.  The
    completion callback receives the completion time.
    """

    def __init__(self, simulator: Simulator, name: str) -> None:
        self.simulator = simulator
        self.name = name
        self._pending: Deque[_Job] = deque()
        self._busy = False
        self.busy_time = 0.0
        self.completed_jobs: List[Tuple[str, float, float]] = []  # (job, start, end)

    def submit(self, name: str, duration: float,
               on_complete: Optional[Callable[[float], None]] = None) -> None:
        if duration < 0:
            raise ValueError("job duration must be non-negative")
        self._pending.append(_Job(name=name, duration=duration, on_complete=on_complete))
        if not self._busy:
            self._start_next()

    def _start_next(self) -> None:
        if not self._pending:
            self._busy = False
            return
        self._busy = True
        job = self._pending.popleft()
        start = self.simulator.now

        def finish() -> None:
            end = self.simulator.now
            self.busy_time += job.duration
            self.completed_jobs.append((job.name, start, end))
            if job.on_complete is not None:
                job.on_complete(end)
            self._start_next()

        self.simulator.schedule_after(job.duration, kind=f"{self.name}:{job.name}",
                                      callback=finish)

    @property
    def is_busy(self) -> bool:
        return self._busy

    def utilisation(self, horizon: Optional[float] = None) -> float:
        """Fraction of time the device was busy up to ``horizon`` (or now)."""
        horizon = horizon if horizon is not None else self.simulator.now
        if horizon <= 0:
            return 0.0
        return min(self.busy_time / horizon, 1.0)
