"""Execution traces: per-device timelines of a simulated frame."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One completed activity (CRU execution or transfer) on a device."""

    device: str
    activity: str             #: "execute" or "transfer"
    subject: str              #: CRU id or tree edge description
    start_time: float
    end_time: float

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time


class ExecutionTrace:
    """Chronological record of everything that happened during a run."""

    def __init__(self) -> None:
        self._events: List[TraceEvent] = []

    def record(self, event: TraceEvent) -> None:
        self._events.append(event)

    def events(self, device: Optional[str] = None,
               activity: Optional[str] = None) -> List[TraceEvent]:
        out = self._events
        if device is not None:
            out = [e for e in out if e.device == device]
        if activity is not None:
            out = [e for e in out if e.activity == activity]
        return sorted(out, key=lambda e: (e.start_time, e.end_time))

    def devices(self) -> List[str]:
        return sorted({e.device for e in self._events})

    def device_busy_time(self, device: str) -> float:
        return sum(e.duration for e in self._events if e.device == device)

    def makespan(self) -> float:
        if not self._events:
            return 0.0
        return max(e.end_time for e in self._events)

    def to_ascii(self, width: int = 60) -> str:
        """A small Gantt-style rendering used by the examples and the CLI."""
        makespan = self.makespan()
        if makespan <= 0:
            return "(empty trace)"
        lines = []
        for device in self.devices():
            cells = [" "] * width
            for event in self.events(device=device):
                lo = int(event.start_time / makespan * (width - 1))
                hi = max(lo, int(event.end_time / makespan * (width - 1)))
                mark = "#" if event.activity == "execute" else "~"
                for i in range(lo, hi + 1):
                    cells[i] = mark
            lines.append(f"{device:>12} |{''.join(cells)}|")
        lines.append(f"{'':>12}  0{'':{width - 8}}t={makespan:.4g}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self._events)
