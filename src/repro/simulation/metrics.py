"""Summary metrics of simulation runs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.simulation.executor import SimulationRun


@dataclass(frozen=True)
class SimulationMetrics:
    """Aggregate view of one simulated frame."""

    end_to_end_delay: float
    analytic_delay: float
    model_gap: float                  #: simulated minus analytic (≤ 0 for relaxed policies)
    host_busy_time: float
    max_satellite_busy_time: float
    mean_device_utilisation: float
    transfer_count: int
    events_processed: int

    def as_dict(self) -> Dict[str, float]:
        return {
            "end_to_end_delay": self.end_to_end_delay,
            "analytic_delay": self.analytic_delay,
            "model_gap": self.model_gap,
            "host_busy_time": self.host_busy_time,
            "max_satellite_busy_time": self.max_satellite_busy_time,
            "mean_device_utilisation": self.mean_device_utilisation,
            "transfer_count": float(self.transfer_count),
            "events_processed": float(self.events_processed),
        }


def compute_metrics(run: SimulationRun) -> SimulationMetrics:
    """Derive :class:`SimulationMetrics` from a :class:`SimulationRun`."""
    analytic = run.assignment.end_to_end_delay()
    satellite_busy = [t for d, t in run.device_busy_times.items()
                      if d != "host" and not d.startswith("link:")]
    utilisation = run.device_utilisation()
    mean_util = sum(utilisation.values()) / len(utilisation) if utilisation else 0.0
    return SimulationMetrics(
        end_to_end_delay=run.end_to_end_delay,
        analytic_delay=analytic,
        model_gap=run.end_to_end_delay - analytic,
        host_busy_time=run.device_busy_times.get("host", 0.0),
        max_satellite_busy_time=max(satellite_busy) if satellite_busy else 0.0,
        mean_device_utilisation=mean_util,
        transfer_count=run.transfer_count,
        events_processed=run.events_processed,
    )
