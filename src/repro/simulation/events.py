"""Event records and the time-ordered event queue."""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional


@dataclass(frozen=True)
class Event:
    """A scheduled simulation event.

    Events are ordered by time, then priority (lower first), then insertion
    order, which makes simulation runs fully deterministic.
    """

    time: float
    kind: str
    callback: Callable[[], None] = field(compare=False, repr=False)
    priority: int = 0
    payload: Dict[str, Any] = field(default_factory=dict, compare=False)

    def fire(self) -> None:
        self.callback()


class EventQueue:
    """A binary-heap priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list = []
        self._counter = itertools.count()
        self._size = 0

    def push(self, event: Event) -> None:
        if event.time < 0:
            raise ValueError("event time must be non-negative")
        heapq.heappush(self._heap, (event.time, event.priority, next(self._counter), event))
        self._size += 1

    def pop(self) -> Event:
        if not self._heap:
            raise IndexError("pop from an empty event queue")
        _, _, _, event = heapq.heappop(self._heap)
        self._size -= 1
        return event

    def peek_time(self) -> Optional[float]:
        if not self._heap:
            return None
        return self._heap[0][0]

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0
