"""Executing an assigned CRU tree on the simulated host-satellites system.

One *frame* of context information is pushed through the CRU tree:

* sensors produce their raw output at time 0 on the satellite they are wired
  to;
* a CRU executes on the device the assignment places it on (``s_i`` seconds
  on its satellite, ``h_i`` seconds on the host) once all of its children's
  outputs are available on that device;
* whenever a tree edge is cut (child on a satellite, parent on the host) the
  child's output is transmitted over the satellite's uplink, which — in the
  paper-faithful model — keeps the satellite busy for the edge's
  communication cost;
* the frame is done when the root CRU completes on the host.

With the default *barrier* policy the host defers all of its processing until
every satellite delivery has arrived (the paper's §3 assumption), which makes
the simulated delay equal the analytic end-to-end delay of the assignment.
The *eager* policy relaxes this to per-CRU precedence and the *dedicated
links* option lets transmissions overlap with satellite computation; both
refinements can only reduce the delay, which the ablation benchmark
quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.core.assignment import Assignment, HOST_DEVICE
from repro.model.problem import AssignmentProblem
from repro.simulation.engine import DeviceResource, Simulator
from repro.simulation.network import StarNetwork
from repro.simulation.trace import ExecutionTrace, TraceEvent


@dataclass(frozen=True)
class ExecutionPolicy:
    """Timing assumptions of a simulation run.

    Attributes
    ----------
    barrier:
        ``True`` (paper model): the host starts processing only after every
        satellite delivery has arrived.  ``False``: per-CRU precedence.
    dedicated_links:
        ``False`` (paper model): the satellite device itself is busy while
        transmitting.  ``True``: transmissions use a separate link resource
        and overlap with the satellite's remaining computation.
    """

    barrier: bool = True
    dedicated_links: bool = False

    @staticmethod
    def paper_model() -> "ExecutionPolicy":
        return ExecutionPolicy(barrier=True, dedicated_links=False)

    @staticmethod
    def eager() -> "ExecutionPolicy":
        return ExecutionPolicy(barrier=False, dedicated_links=False)


@dataclass
class SimulationRun:
    """Result of simulating one frame through an assigned CRU tree."""

    problem: AssignmentProblem
    assignment: Assignment
    policy: ExecutionPolicy
    end_to_end_delay: float
    completion_times: Dict[str, float]
    trace: ExecutionTrace
    device_busy_times: Dict[str, float]
    transfer_count: int
    events_processed: int

    def device_utilisation(self) -> Dict[str, float]:
        """Busy fraction of every device over the frame's makespan."""
        makespan = self.end_to_end_delay
        if makespan <= 0:
            return {d: 0.0 for d in self.device_busy_times}
        return {d: min(t / makespan, 1.0) for d, t in self.device_busy_times.items()}


class _AssignmentExecutor:
    """Internal: wires the event-driven execution of one frame."""

    def __init__(self, problem: AssignmentProblem, assignment: Assignment,
                 policy: ExecutionPolicy) -> None:
        self.problem = problem
        self.assignment = assignment
        self.policy = policy
        self.simulator = Simulator()
        self.trace = ExecutionTrace()

        self.host_device = DeviceResource(self.simulator, name=HOST_DEVICE)
        self.satellite_devices: Dict[str, DeviceResource] = {
            sid: DeviceResource(self.simulator, name=sid)
            for sid in problem.system.satellite_ids()
        }
        self.network = StarNetwork(self.simulator, problem.system,
                                   dedicated_links=policy.dedicated_links)

        tree = problem.tree
        self.pending_inputs: Dict[str, int] = {
            cru_id: len(tree.children_ids(cru_id)) for cru_id in tree.cru_ids()
        }
        self.completion_times: Dict[str, float] = {}
        self.expected_deliveries = sum(
            1 for parent, child in assignment.cut_edges()
            if assignment.placement[parent] == HOST_DEVICE)
        self.received_deliveries = 0
        self.barrier_released = self.expected_deliveries == 0 or not policy.barrier
        self.held_host_crus: List[str] = []

    # --------------------------------------------------------------- helpers
    def _device_of(self, cru_id: str) -> DeviceResource:
        device = self.assignment.placement[cru_id]
        if device == HOST_DEVICE:
            return self.host_device
        return self.satellite_devices[device]

    def _execution_time(self, cru_id: str) -> float:
        if self.assignment.placement[cru_id] == HOST_DEVICE:
            return self.problem.host_time(cru_id)
        return self.problem.satellite_time(cru_id)

    # ------------------------------------------------------------------ run
    def run(self) -> SimulationRun:
        tree = self.problem.tree

        # processing CRUs without any children only occur in degenerate trees
        # (validation rejects them); started immediately for robustness
        for cru_id in tree.processing_ids():
            if not tree.children_ids(cru_id):
                self._make_ready(cru_id)

        # sensors produce output at time 0 (they perform no processing)
        for sensor_id in tree.sensor_ids():
            self.completion_times[sensor_id] = 0.0
            self._propagate_output(sensor_id, 0.0)

        self.simulator.run()

        root_id = tree.root_id
        if root_id not in self.completion_times:
            raise RuntimeError("the root CRU never completed; the assignment is infeasible "
                               f"({self.assignment.feasibility_errors()})")

        busy = {HOST_DEVICE: self.host_device.busy_time}
        for sid, device in self.satellite_devices.items():
            busy[sid] = device.busy_time
            if self.policy.dedicated_links:
                busy[f"link:{sid}"] = self.network.link_resource(sid).busy_time

        return SimulationRun(
            problem=self.problem,
            assignment=self.assignment,
            policy=self.policy,
            end_to_end_delay=self.completion_times[root_id],
            completion_times=dict(self.completion_times),
            trace=self.trace,
            device_busy_times=busy,
            transfer_count=self.network.transfer_count(),
            events_processed=self.simulator.processed_events,
        )

    # ----------------------------------------------------------- dependencies
    def _propagate_output(self, cru_id: str, ready_time: float) -> None:
        """The output of ``cru_id`` exists on its own device at ``ready_time``;
        move it to the parent's device (transferring if needed) and update the
        parent's dependency counter."""
        tree = self.problem.tree
        parent = tree.parent_id(cru_id)
        if parent is None:
            return
        child_device = self.assignment.placement[cru_id]
        parent_device = self.assignment.placement[parent]

        if child_device == parent_device or (
                tree.cru(cru_id).is_sensor and parent_device == child_device):
            self._input_arrived(parent)
            return

        if parent_device == HOST_DEVICE:
            satellite_id = child_device
            duration = self.problem.comm_cost(cru_id, parent)
            carrier = (self.network.link_resource(satellite_id)
                       if self.policy.dedicated_links
                       else self.satellite_devices[satellite_id])

            def delivered(end_time: float) -> None:
                self.trace.record(TraceEvent(
                    device=satellite_id if not self.policy.dedicated_links
                    else f"link:{satellite_id}",
                    activity="transfer",
                    subject=f"{cru_id}->{parent}",
                    start_time=end_time - duration,
                    end_time=end_time,
                ))
                self.received_deliveries += 1
                self._input_arrived(parent)
                self._maybe_release_barrier()

            self.network.transfer(satellite_id, payload=f"{cru_id}->{parent}",
                                  duration=duration, carrier=carrier,
                                  on_delivered=delivered)
            return

        raise RuntimeError(
            f"infeasible data flow: {cru_id!r} on {child_device!r} feeds {parent!r} "
            f"on {parent_device!r} (satellites cannot talk to each other)")

    def _input_arrived(self, cru_id: str) -> None:
        self.pending_inputs[cru_id] -= 1
        if self.pending_inputs[cru_id] == 0:
            self._make_ready(cru_id)

    def _maybe_release_barrier(self) -> None:
        if self.barrier_released or not self.policy.barrier:
            return
        if self.received_deliveries >= self.expected_deliveries:
            self.barrier_released = True
            held, self.held_host_crus = self.held_host_crus, []
            for cru_id in held:
                self._start_execution(cru_id)

    def _make_ready(self, cru_id: str) -> None:
        on_host = self.assignment.placement[cru_id] == HOST_DEVICE
        if on_host and self.policy.barrier and not self.barrier_released:
            self.held_host_crus.append(cru_id)
            return
        self._start_execution(cru_id)

    def _start_execution(self, cru_id: str) -> None:
        device = self._device_of(cru_id)
        duration = self._execution_time(cru_id)
        device_name = self.assignment.placement[cru_id]

        def completed(end_time: float) -> None:
            self.completion_times[cru_id] = end_time
            self.trace.record(TraceEvent(
                device=device_name,
                activity="execute",
                subject=cru_id,
                start_time=end_time - duration,
                end_time=end_time,
            ))
            self._propagate_output(cru_id, end_time)

        device.submit(name=f"execute:{cru_id}", duration=duration, on_complete=completed)


def simulate_assignment(problem: AssignmentProblem, assignment: Assignment,
                        policy: Optional[ExecutionPolicy] = None) -> SimulationRun:
    """Simulate one context frame through an assigned CRU tree.

    Raises ``ValueError`` when the assignment violates the feasibility rules
    (the simulator only models feasible data flows).
    """
    errors = assignment.feasibility_errors()
    if errors:
        raise ValueError("cannot simulate an infeasible assignment: " + "; ".join(errors))
    policy = policy or ExecutionPolicy.paper_model()
    executor = _AssignmentExecutor(problem, assignment, policy)
    return executor.run()
