"""``repro top`` — a live terminal dashboard over a spool directory.

Pure functions compute (:func:`spool_snapshot`) and render
(:func:`render_top`) one frame; :func:`run_top` wraps them in a plain
ANSI-redraw loop (no curses, no dependencies), so the same snapshot/render
path is unit-testable and usable one-shot in CI via ``repro top --once``.

Everything shown is reconstructed from spool artifacts alone — directory
listings, claim-file progress records, result files, and the event log —
so ``top`` can watch a fleet it shares nothing with but the filesystem.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, List, Optional

from repro.observability.events import EVENT_PROGRESS, EventLog

#: Results whose mtime falls inside this window count toward throughput.
THROUGHPUT_WINDOW_S = 60.0

#: Eight-level block characters for incumbent convergence sparklines.
SPARK_CHARS = "▁▂▃▄▅▆▇█"

_SPOOL_SUBDIRS = ("tasks", "claimed", "results", "failed")


def _split_name(name: str) -> Optional[Dict[str, Any]]:
    if not name.endswith(".json"):
        return None
    stem = name[: -len(".json")]
    task_id, sep, attempt_text = stem.rpartition(".a")
    if not sep or not task_id or not attempt_text.isdigit():
        return None
    return {"task_id": task_id, "attempt": int(attempt_text)}


def sparkline(values: List[float], width: int = 16) -> str:
    """Render a numeric series as a fixed-width block-character sparkline.

    Objectives *decrease* as incumbents improve, so the line typically
    falls; a flat line means the solve converged.
    """
    if not values:
        return ""
    if len(values) > width:
        values = values[-width:]
    low, high = min(values), max(values)
    if high <= low:
        return SPARK_CHARS[0] * len(values)
    scale = (len(SPARK_CHARS) - 1) / (high - low)
    return "".join(SPARK_CHARS[int((v - low) * scale)] for v in values)


def spool_snapshot(
    directory: str,
    now: Optional[float] = None,
    window_s: float = THROUGHPUT_WINDOW_S,
) -> Dict[str, Any]:
    """One observation of a spool: depths, leases, throughput, progress."""
    now = time.time() if now is None else now
    snapshot: Dict[str, Any] = {"directory": directory, "ts": now}

    counts: Dict[str, int] = {}
    for sub in _SPOOL_SUBDIRS:
        try:
            names = os.listdir(os.path.join(directory, sub))
        except OSError:
            names = []
        counts[sub] = sum(1 for n in names if n.endswith(".json"))
    snapshot["counts"] = counts

    # claimed tasks: lease age + latest published progress per claim file
    claimed: List[Dict[str, Any]] = []
    claimed_dir = os.path.join(directory, "claimed")
    try:
        names = sorted(os.listdir(claimed_dir))
    except OSError:
        names = []
    for name in names:
        parts = _split_name(name)
        if parts is None:
            continue
        path = os.path.join(claimed_dir, name)
        try:
            stat = os.stat(path)
        except OSError:
            continue
        record: Dict[str, Any] = {
            "task_id": parts["task_id"],
            "attempt": parts["attempt"],
        }
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            payload = {}
        record["method"] = payload.get("method")
        progress = payload.get("progress") or {}
        record["best_objective"] = progress.get("best_objective")
        record["incumbents"] = progress.get("incumbents")
        # lease age measures *solver activity*: prefer the wall-clock stamp
        # the worker publishes with each progress record — the raw mtime is
        # bumped by every idle lease renewal (utime), so it only says the
        # worker is alive, not when the solve last improved
        progress_ts = progress.get("ts")
        if isinstance(progress_ts, (int, float)) and progress_ts > 0:
            record["lease_age_s"] = max(0.0, now - float(progress_ts))
        else:
            record["lease_age_s"] = max(0.0, now - stat.st_mtime)
        claimed.append(record)
    snapshot["claimed"] = claimed

    # per-solver throughput: results published inside the trailing window
    throughput: Dict[str, Dict[str, Any]] = {}
    results_dir = os.path.join(directory, "results")
    try:
        names = os.listdir(results_dir)
    except OSError:
        names = []
    for name in names:
        if not name.endswith(".json"):
            continue
        path = os.path.join(results_dir, name)
        try:
            stat = os.stat(path)
        except OSError:
            continue
        try:
            with open(path, "r", encoding="utf-8") as handle:
                result = json.load(handle)
        except (OSError, ValueError):
            continue
        method = str(result.get("method") or "?")
        bucket = throughput.setdefault(
            method,
            {"total": 0, "recent": 0, "cached": 0},
        )
        bucket["total"] += 1
        if result.get("cached"):
            bucket["cached"] += 1
        if now - stat.st_mtime <= window_s:
            bucket["recent"] += 1
    for bucket in throughput.values():
        bucket["per_s"] = bucket["recent"] / window_s if window_s > 0 else 0.0
    snapshot["throughput"] = throughput
    snapshot["window_s"] = window_s

    # incumbent series per task from progress events (the claim file only
    # holds the latest record; the event log has the whole trajectory)
    series: Dict[str, List[float]] = {}
    for event in EventLog.for_spool(directory).iter_events():
        if event.get("kind") != EVENT_PROGRESS:
            continue
        task_id = event.get("task_id")
        objective = (event.get("progress") or {}).get("best_objective")
        if task_id is None or not isinstance(objective, (int, float)):
            continue
        series.setdefault(str(task_id), []).append(float(objective))
    snapshot["progress_series"] = series
    return snapshot


def render_top(snapshot: Dict[str, Any], width: int = 80) -> str:
    """Render one snapshot as a multi-line text frame."""
    counts = snapshot.get("counts", {})
    stamp = time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(snapshot.get("ts", 0)))
    depth_parts = [
        f"{counts.get('tasks', 0)} pending",
        f"{counts.get('claimed', 0)} claimed",
        f"{counts.get('results', 0)} results",
        f"{counts.get('failed', 0)} failed",
    ]
    lines = [
        f"repro top — {snapshot.get('directory', '?')}",
        stamp,
        "",
        "queue depth: " + " | ".join(depth_parts),
        "",
    ]

    throughput = snapshot.get("throughput", {})
    window_s = snapshot.get("window_s", THROUGHPUT_WINDOW_S)
    lines.append(f"solver throughput (last {window_s:.0f}s)")
    if throughput:
        name_w = max(len(m) for m in throughput)
        for method in sorted(throughput):
            bucket = throughput[method]
            rate = f"{bucket['per_s']:7.2f}/s"
            tallies = "  ".join(
                [
                    f"{bucket['recent']:>4} recent",
                    f"{bucket['total']:>5} total",
                    f"{bucket['cached']:>4} cached",
                ]
            )
            lines.append(f"  {method:<{name_w}}  {rate}  {tallies}")
    else:
        lines.append("  (no results yet)")
    lines.append("")

    claimed = snapshot.get("claimed", [])
    series = snapshot.get("progress_series", {})
    lines.append(f"in flight ({len(claimed)} leases)")
    if claimed:
        for record in claimed:
            task_id = record["task_id"]
            objective = record.get("best_objective")
            objective_text = "-" if objective is None else f"{objective:.6g}"
            spark = sparkline(series.get(task_id, []))
            method = record.get("method") or "?"
            head = f"  {task_id[-17:]:<17} a{record['attempt']} {method:<22} "
            lease = f"lease {record['lease_age_s']:6.1f}s"
            lines.append(head + f"{lease}  best {objective_text:<12} {spark}")
    else:
        lines.append("  (idle)")
    return "\n".join(line[:width] for line in lines)


def run_top(
    directory: str,
    interval: float = 1.0,
    iterations: Optional[int] = None,
    width: int = 100,
    stream=None,
    clear: bool = True,
) -> int:
    """Redraw loop: snapshot, render, sleep.  Returns frames drawn."""
    import sys

    out = stream if stream is not None else sys.stdout
    frames = 0
    try:
        while iterations is None or frames < iterations:
            frame = render_top(spool_snapshot(directory), width=width)
            if clear:
                out.write("\x1b[2J\x1b[H")
            out.write(frame + "\n")
            out.flush()
            frames += 1
            if iterations is not None and frames >= iterations:
                break
            time.sleep(interval)
    except KeyboardInterrupt:
        pass
    return frames
