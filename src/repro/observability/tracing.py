"""Distributed tracing and solver-internal profiling, zero-dependency.

A :class:`Tracer` mints :class:`Span` records — ``trace_id`` / ``span_id`` /
``parent_id`` triples with wall-clock anchors and monotonic durations — and
persists each *finished* span as one ``kind="span"`` line through the
existing SIGKILL-atomic :class:`~repro.observability.events.EventLog`.  A
killed worker therefore loses at most its still-open spans; everything
already finished survives, torn-line tolerant, next to the ordinary
lifecycle events it interleaves with.

Trace context crosses process boundaries as a plain dict
(``{"trace_id", "span_id", "log"}``) carried inside the task payload: the
``log`` entry is the absolute path of the submitter's event log, so any
process — spool worker, batch pool child — can continue the trace by
appending to the same crash-safe file.  Sampling is **deterministic and
head-based**: whether a task is traced is decided once at submit time from
the canonical problem hash (:func:`sampled`), so re-running the same
instance set at the same rate traces the same instances.

The module also ships the read side: :func:`load_spans` /
:func:`group_traces` replay a spool's span records, :func:`chrome_trace`
exports Chrome trace-event JSON loadable by Perfetto or
``chrome://tracing``, :func:`render_waterfall` draws an ASCII waterfall and
:func:`render_profile` a bound-effectiveness table for the exact engines
(which of the three completion potentials — the sigma/colour-load floor,
the joint-average bound, the incumbent re-check at settle time — actually
killed labels).  :class:`ProfileAccumulator` is the low-overhead carrier
the label engines write per-node sweep counters into; it only exists on
traced solves, so the untraced hot path pays a single ``is None`` test.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, Iterable, List, Mapping, Optional

from repro.observability.events import EVENT_SPAN, EVENTS_FILENAME, EventLog
from repro.observability.metrics import MetricsRegistry, default_metrics

__all__ = [
    "ProfileAccumulator",
    "Span",
    "Tracer",
    "chrome_trace",
    "group_traces",
    "load_spans",
    "render_profile",
    "render_waterfall",
    "sampled",
    "trace_context",
]

#: Metric: one increment per finished span, labelled by span name.
SPANS_TOTAL = "repro_trace_spans_total"

# Denominator for head-based sampling: the first 8 hex digits of the
# canonical problem hash, read as a 32-bit integer.
_SAMPLE_BUCKETS = float(1 << 32)


def sampled(problem_hash: str, rate: float) -> bool:
    """Deterministic head-based sampling decision for one problem.

    Keyed on the canonical problem fingerprint, so the same instance is
    either always or never traced at a given rate — across submitters,
    re-runs and spool shards alike.
    """
    if rate <= 0.0:
        return False
    if rate >= 1.0:
        return True
    try:
        bucket = int(problem_hash[:8], 16)
    except (TypeError, ValueError):
        return False
    return bucket / _SAMPLE_BUCKETS < rate


def trace_context(span: Optional["Span"]) -> Optional[Dict[str, str]]:
    """Payload-embeddable trace context for ``span`` (None when untraced)."""
    if span is None:
        return None
    return span.context()


class ProfileAccumulator:
    """Per-node sweep counters for one traced exact solve.

    The label engines call :meth:`record_node` **once per swept node** —
    never per label — so the traced overhead is a handful of integer adds
    per node.  Totals split bound rejections by which completion potential
    fired: the sigma + per-colour load *floor* bound (tree DP), the
    per-*colour* joint sigma/load bound (label sweep), the *joint* average
    bound, the incumbent re-check when a lazy bucket *settles*, and the
    *meet*-in-the-middle join pre-filter (bidirectional sweep).
    """

    __slots__ = (
        "engine",
        "labels_created",
        "labels_dominated",
        "pruned_floor",
        "pruned_colour",
        "pruned_joint",
        "pruned_settle",
        "pruned_meet",
        "frontier_peak",
        "settle_batches",
        "nodes_swept",
        "per_node",
        "node_cap",
    )

    def __init__(self, engine: str = "", node_cap: int = 512) -> None:
        self.engine = engine
        self.labels_created = 0
        self.labels_dominated = 0
        self.pruned_floor = 0
        self.pruned_colour = 0
        self.pruned_joint = 0
        self.pruned_settle = 0
        self.pruned_meet = 0
        self.frontier_peak = 0
        self.settle_batches = 0
        self.nodes_swept = 0
        self.per_node: List[List[Any]] = []
        self.node_cap = node_cap

    def record_node(
        self,
        node: Any,
        created: int = 0,
        dominated: int = 0,
        pruned_floor: int = 0,
        pruned_joint: int = 0,
        pruned_settle: int = 0,
        frontier: int = 0,
        settle_batches: int = 0,
        pruned_colour: int = 0,
        pruned_meet: int = 0,
    ) -> None:
        self.labels_created += created
        self.labels_dominated += dominated
        self.pruned_floor += pruned_floor
        self.pruned_colour += pruned_colour
        self.pruned_joint += pruned_joint
        self.pruned_settle += pruned_settle
        self.pruned_meet += pruned_meet
        if frontier > self.frontier_peak:
            self.frontier_peak = frontier
        self.settle_batches += settle_batches
        self.nodes_swept += 1
        if len(self.per_node) < self.node_cap:
            self.per_node.append(
                [
                    str(node),
                    int(created),
                    int(dominated),
                    int(pruned_floor + pruned_colour),
                    int(pruned_joint),
                    int(pruned_settle + pruned_meet),
                ]
            )

    @property
    def pruned_total(self) -> int:
        return (self.pruned_floor + self.pruned_colour + self.pruned_joint
                + self.pruned_settle + self.pruned_meet)

    def totals(self) -> Dict[str, int]:
        """Flat scalar totals — safe to embed in ``details['profile']``."""
        out = {
            "labels_created": self.labels_created,
            "labels_dominated": self.labels_dominated,
            "pruned_floor": self.pruned_floor,
            "pruned_colour": self.pruned_colour,
            "pruned_joint": self.pruned_joint,
            "pruned_settle": self.pruned_settle,
            "pruned_meet": self.pruned_meet,
            "pruned_total": self.pruned_total,
            "frontier_peak": self.frontier_peak,
            "settle_batches": self.settle_batches,
            "nodes_swept": self.nodes_swept,
        }
        if self.engine:
            out["engine"] = self.engine
        return out

    def as_dict(self) -> Dict[str, Any]:
        """Totals plus per-node rows — attached to the span record."""
        out: Dict[str, Any] = self.totals()
        out["per_node"] = [list(row) for row in self.per_node]
        return out


class Span:
    """One timed operation inside a trace.

    Wall-clock ``start`` anchors the span on the shared epoch axis (so
    spans from different processes line up in a waterfall); the duration is
    measured with ``time.perf_counter`` so clock steps cannot produce
    negative or inflated spans.  ``finish`` is idempotent and writes the
    record through the tracer's event log.
    """

    __slots__ = (
        "tracer",
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "task_id",
        "start",
        "_perf0",
        "attrs",
        "events",
        "profile",
        "_finished",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str] = None,
        task_id: Optional[str] = None,
        **attrs: Any,
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.task_id = task_id
        self.start = time.time()
        self._perf0 = time.perf_counter()
        self.attrs: Dict[str, Any] = dict(attrs)
        self.events: List[Dict[str, Any]] = []
        self.profile: Optional[ProfileAccumulator] = None
        self._finished = False

    # ------------------------------------------------------------- plumbing
    def context(self) -> Dict[str, str]:
        """Cross-process continuation context (carried in task payloads)."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "log": self.tracer.log_path,
        }

    def child(self, name: str, **attrs: Any) -> "Span":
        return self.tracer.start(
            name,
            trace_id=self.trace_id,
            parent_id=self.span_id,
            task_id=self.task_id,
            **attrs,
        )

    def set_attr(self, key: str, value: Any) -> None:
        self.attrs[key] = value

    def add_event(self, name: str, **attrs: Any) -> None:
        event: Dict[str, Any] = {
            "name": name,
            "at": self.start + (time.perf_counter() - self._perf0),
        }
        if attrs:
            event.update(attrs)
        self.events.append(event)

    def ensure_profile(self, engine: str = "") -> ProfileAccumulator:
        if self.profile is None:
            self.profile = ProfileAccumulator(engine=engine)
        elif engine and not self.profile.engine:
            self.profile.engine = engine
        return self.profile

    def finish(self, **attrs: Any) -> None:
        if self._finished:
            return
        self._finished = True
        if attrs:
            self.attrs.update(attrs)
        self.tracer._record(self, time.perf_counter() - self._perf0)

    # ------------------------------------------------------- context manager
    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.attrs.setdefault("error", f"{exc_type.__name__}: {exc}")
        self.finish()


class Tracer:
    """Mints spans and persists them through a crash-safe event log.

    A tracer is enabled iff it has a log; :meth:`start` on a disabled
    tracer raises, but the convenience constructors (:meth:`root`,
    :meth:`resume`) return ``None`` instead so call sites stay a single
    ``if span is not None`` on the untraced path.
    """

    __slots__ = ("log", "sample_rate", "registry")

    def __init__(
        self,
        log: Optional[EventLog] = None,
        sample_rate: float = 1.0,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.log = log
        self.sample_rate = sample_rate
        self.registry = registry

    # ------------------------------------------------------------ factories
    @classmethod
    def for_spool(
        cls,
        directory: str,
        sample_rate: float = 1.0,
        registry: Optional[MetricsRegistry] = None,
    ) -> "Tracer":
        return cls(
            EventLog.for_spool(directory), sample_rate=sample_rate, registry=registry
        )

    @classmethod
    def from_context(
        cls, context: Mapping[str, Any], registry: Optional[MetricsRegistry] = None
    ) -> Optional["Tracer"]:
        """Tracer continuing a payload-carried trace (None if malformed)."""
        log_path = context.get("log") if isinstance(context, Mapping) else None
        if not log_path or not context.get("trace_id"):
            return None
        return cls(EventLog(str(log_path)), registry=registry)

    # ------------------------------------------------------------ decisions
    @property
    def enabled(self) -> bool:
        return self.log is not None

    @property
    def log_path(self) -> str:
        return self.log.path if self.log is not None else ""

    def sampled(self, problem_hash: str) -> bool:
        return self.enabled and sampled(problem_hash, self.sample_rate)

    # ----------------------------------------------------------------- mint
    def start(
        self,
        name: str,
        *,
        trace_id: Optional[str] = None,
        parent_id: Optional[str] = None,
        task_id: Optional[str] = None,
        **attrs: Any,
    ) -> Span:
        if self.log is None:
            raise RuntimeError("cannot start a span on a disabled tracer")
        return Span(
            self,
            name,
            trace_id=trace_id or os.urandom(8).hex(),
            span_id=os.urandom(4).hex(),
            parent_id=parent_id,
            task_id=task_id,
            **attrs,
        )

    def root(
        self, name: str, problem_hash: Optional[str] = None, **kwargs: Any
    ) -> Optional[Span]:
        """New trace root, or ``None`` when disabled / sampled out."""
        if not self.enabled:
            return None
        if problem_hash is not None and not sampled(problem_hash, self.sample_rate):
            return None
        return self.start(name, **kwargs)

    def resume(
        self,
        context: Optional[Mapping[str, Any]],
        name: str,
        task_id: Optional[str] = None,
        **attrs: Any,
    ) -> Optional[Span]:
        """Continue a payload-carried trace context (None when untraced)."""
        if not self.enabled or not isinstance(context, Mapping):
            return None
        trace_id = context.get("trace_id")
        if not trace_id:
            return None
        return self.start(
            name,
            trace_id=str(trace_id),
            parent_id=context.get("span_id"),
            task_id=task_id,
            **attrs,
        )

    # -------------------------------------------------------------- persist
    def _record(self, span: Span, duration: float) -> None:
        if self.log is None:
            return
        fields: Dict[str, Any] = {
            "trace_id": span.trace_id,
            "span_id": span.span_id,
            "name": span.name,
            "start": span.start,
            "dur_s": round(duration, 9),
            "pid": os.getpid(),
        }
        if span.parent_id:
            fields["parent_id"] = span.parent_id
        if span.attrs:
            fields["attrs"] = span.attrs
        if span.events:
            fields["events"] = span.events
        if span.profile is not None:
            fields["profile"] = span.profile.as_dict()
        self.log.emit(EVENT_SPAN, task_id=span.task_id, **fields)
        registry = self.registry if self.registry is not None else default_metrics()
        try:
            registry.counter(
                SPANS_TOTAL, "Finished tracing spans by span name"
            ).inc(kind=span.name)
        except ValueError:
            pass


# ---------------------------------------------------------------- read side
def load_spans(source: Any) -> List[Dict[str, Any]]:
    """Span records from an :class:`EventLog`, events file, or spool dir."""
    if isinstance(source, EventLog):
        log = source
    else:
        path = str(source)
        if os.path.isdir(path):
            path = os.path.join(path, EVENTS_FILENAME)
        log = EventLog(path)
    spans = [
        event
        for event in log.iter_events()
        if event.get("kind") == EVENT_SPAN and event.get("trace_id")
    ]
    spans.sort(key=lambda record: record.get("start", 0.0))
    return spans


def group_traces(spans: Iterable[Mapping[str, Any]]) -> Dict[str, List[Dict[str, Any]]]:
    """Spans grouped by ``trace_id``, each group sorted by start time."""
    traces: Dict[str, List[Dict[str, Any]]] = {}
    for span in spans:
        traces.setdefault(str(span.get("trace_id")), []).append(dict(span))
    for group in traces.values():
        group.sort(key=lambda record: record.get("start", 0.0))
    return traces


def chrome_trace(spans: Iterable[Mapping[str, Any]]) -> Dict[str, Any]:
    """Chrome trace-event JSON (Perfetto / ``chrome://tracing`` loadable).

    Spans become complete (``ph="X"``) events on a per-pid track; span
    events become instant (``ph="i"``) marks; each pid gets a
    ``process_name`` metadata record so the Perfetto track picker reads
    ``repro pid <n>`` instead of bare numbers.
    """
    trace_events: List[Dict[str, Any]] = []
    pids_seen: Dict[int, bool] = {}
    for span in spans:
        pid = int(span.get("pid", 0))
        if pid not in pids_seen:
            pids_seen[pid] = True
            trace_events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": pid,
                    "args": {"name": f"repro pid {pid}"},
                }
            )
        start_us = float(span.get("start", 0.0)) * 1e6
        args: Dict[str, Any] = {
            "trace_id": span.get("trace_id"),
            "span_id": span.get("span_id"),
        }
        if span.get("parent_id"):
            args["parent_id"] = span["parent_id"]
        if span.get("task_id"):
            args["task_id"] = span["task_id"]
        for key, value in (span.get("attrs") or {}).items():
            args[key] = value
        profile = span.get("profile")
        if isinstance(profile, Mapping):
            args["profile"] = {
                key: value for key, value in profile.items() if key != "per_node"
            }
        trace_events.append(
            {
                "name": str(span.get("name", "span")),
                "cat": "repro",
                "ph": "X",
                "ts": start_us,
                "dur": max(0.0, float(span.get("dur_s", 0.0)) * 1e6),
                "pid": pid,
                "tid": pid,
                "args": args,
            }
        )
        for event in span.get("events") or ():
            trace_events.append(
                {
                    "name": str(event.get("name", "event")),
                    "cat": "repro",
                    "ph": "i",
                    "s": "p",
                    "ts": float(event.get("at", span.get("start", 0.0))) * 1e6,
                    "pid": pid,
                    "tid": pid,
                    "args": {
                        key: value
                        for key, value in event.items()
                        if key not in ("name", "at")
                    },
                }
            )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(spans: Iterable[Mapping[str, Any]], path: str) -> str:
    payload = chrome_trace(spans)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return path


def _span_depths(spans: List[Mapping[str, Any]]) -> Dict[str, int]:
    by_id = {str(span.get("span_id")): span for span in spans}
    depths: Dict[str, int] = {}

    def depth(span_id: str) -> int:
        if span_id in depths:
            return depths[span_id]
        span = by_id.get(span_id)
        parent = str(span.get("parent_id") or "") if span else ""
        depths[span_id] = 1 + depth(parent) if parent in by_id else 0
        return depths[span_id]

    for span in spans:
        depth(str(span.get("span_id")))
    return depths


def render_waterfall(spans: List[Mapping[str, Any]], width: int = 40) -> str:
    """ASCII waterfall for one trace's spans (pass one group_traces value)."""
    if not spans:
        return "(no spans)"
    t0 = min(float(span.get("start", 0.0)) for span in spans)
    t1 = max(
        float(span.get("start", 0.0)) + float(span.get("dur_s", 0.0)) for span in spans
    )
    window = max(t1 - t0, 1e-9)
    depths = _span_depths(spans)
    trace_id = spans[0].get("trace_id", "?")
    task_ids = sorted(
        {str(span["task_id"]) for span in spans if span.get("task_id")}
    )
    header = f"trace {trace_id} · {window:.3f}s window"
    if task_ids:
        header += f" · task {', '.join(task_ids)}"
    lines = [header]
    name_width = max(
        len("  " * depths.get(str(span.get("span_id")), 0) + str(span.get("name", "")))
        for span in spans
    )
    for span in spans:
        start = float(span.get("start", 0.0)) - t0
        dur = float(span.get("dur_s", 0.0))
        lead = min(width - 1, int(round(start / window * width)))
        body = max(1, int(round(dur / window * width)))
        body = min(body, width - lead)
        bar = " " * lead + "#" * body + " " * (width - lead - body)
        indent = "  " * depths.get(str(span.get("span_id")), 0)
        label = f"{indent}{span.get('name', '')}"
        pid = span.get("pid", "?")
        lines.append(
            f"  {label:<{name_width}}  |{bar}|  "
            f"+{start * 1e3:8.2f}ms  {dur * 1e3:8.2f}ms  pid {pid}"
        )
        for event in span.get("events") or ():
            at = float(event.get("at", 0.0)) - t0
            mark = min(width - 1, max(0, int(round(at / window * width))))
            tick = " " * mark + "^" + " " * (width - mark - 1)
            lines.append(
                f"  {'':<{name_width}}  |{tick}|  "
                f"+{at * 1e3:8.2f}ms  · {event.get('name', 'event')}"
            )
    return "\n".join(lines)


#: Human labels for the completion-bound rejection counters.
_BOUND_ROWS = (
    ("pruned_floor", "sigma + colour-load floor bound"),
    ("pruned_colour", "per-colour joint sigma/load bound"),
    ("pruned_joint", "joint average-load bound"),
    ("pruned_settle", "incumbent re-check at settle"),
    ("pruned_meet", "meet-in-the-middle join pre-filter"),
)


def render_profile(profile: Mapping[str, Any], title: str = "") -> str:
    """Bound-effectiveness table for one solve's pruning profile."""
    lines = []
    engine = profile.get("engine") or "label engine"
    heading = title or f"bound-effectiveness profile ({engine})"
    lines.append(heading)
    created = int(profile.get("labels_created", 0) or 0)
    lines.append(f"  labels created            {created:>12,}")
    lines.append(
        f"  dominance-retired         "
        f"{int(profile.get('labels_dominated', 0) or 0):>12,}"
    )
    pruned_total = int(profile.get("pruned_total", 0) or 0)
    denominator = max(1, pruned_total)
    for key, label in _BOUND_ROWS:
        count = int(profile.get(key, 0) or 0)
        share = 100.0 * count / denominator
        lines.append(f"  rejected: {label:<36} {count:>12,}  ({share:5.1f}%)")
    lines.append(f"  rejected total            {pruned_total:>12,}")
    lines.append(
        f"  frontier peak             "
        f"{int(profile.get('frontier_peak', 0) or 0):>12,}"
    )
    lines.append(
        f"  settle batches            "
        f"{int(profile.get('settle_batches', 0) or 0):>12,}"
    )
    lines.append(
        f"  nodes swept               "
        f"{int(profile.get('nodes_swept', 0) or 0):>12,}"
    )
    return "\n".join(lines)
