"""Typed solve-lifecycle event log: crash-safe JSONL next to the spool.

Every fleet-visible state change — a task submitted, claimed, progressed,
acked, requeued, dead-lettered — appends one JSON line to
``<spool>/events.jsonl``.  The append is a **single ``os.write`` on an
``O_APPEND`` descriptor**, which POSIX makes atomic with respect to other
appenders and indivisible under ``SIGKILL``: a killed worker leaves at most
one truncated final line, never interleaved garbage.  The reader mirrors
that contract by accepting only newline-terminated lines that parse as JSON
objects and silently skipping anything else.

``repro audit`` replays this file (joined with spool result artifacts) into
per-task timelines; ``repro top`` tails it for incumbent sparklines.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, Iterator, List, Optional

__all__ = ["EventLog", "EVENTS_FILENAME"]

#: Name of the log file, created at the spool root next to ``tasks/`` etc.
EVENTS_FILENAME = "events.jsonl"

# Lifecycle event kinds, in rough temporal order for one task.
EVENT_SUBMIT = "submit"
EVENT_CLAIM = "claim"
EVENT_SOLVE_START = "solve_start"
EVENT_PROGRESS = "progress"
EVENT_CACHE_HIT = "cache_hit"
EVENT_SOLVE_END = "solve_end"
EVENT_ACK = "ack"
EVENT_FAIL = "fail"
EVENT_REQUEUE = "requeue"
EVENT_RELEASE = "release"
EVENT_DEAD_LETTER = "dead_letter"
EVENT_QUARANTINE = "quarantine"
EVENT_POISON = "poison"
# A finished tracing span (see repro.observability.tracing); rides the same
# crash-safe log so a SIGKILL'd worker loses at most its open spans.
EVENT_SPAN = "span"

KNOWN_KINDS = (
    EVENT_SUBMIT,
    EVENT_CLAIM,
    EVENT_SOLVE_START,
    EVENT_PROGRESS,
    EVENT_CACHE_HIT,
    EVENT_SOLVE_END,
    EVENT_ACK,
    EVENT_FAIL,
    EVENT_REQUEUE,
    EVENT_RELEASE,
    EVENT_DEAD_LETTER,
    EVENT_QUARANTINE,
    EVENT_POISON,
    EVENT_SPAN,
)


class EventLog:
    """Append-only JSONL event stream with torn-write-tolerant reads.

    ``fs`` routes the append through a
    :class:`~repro.runtime.fsio.FilesystemAdapter` so the chaos harness can
    inject EIO/torn faults into telemetry too; by default the append is a
    direct ``os.open``/``os.write`` with no indirection.
    """

    def __init__(self, path: str, fs=None) -> None:
        self.path = os.path.abspath(path)
        self.fs = fs

    @classmethod
    def for_spool(cls, directory: str, fs=None) -> "EventLog":
        return cls(os.path.join(directory, EVENTS_FILENAME), fs=fs)

    def emit(self, kind: str, task_id: Optional[str] = None, **fields: Any) -> None:
        """Append one event; never raises into the hot path."""
        event: Dict[str, Any] = {"ts": time.time(), "kind": kind}
        if task_id is not None:
            event["task_id"] = task_id
        event.update(fields)
        line = json.dumps(event, sort_keys=True, separators=(",", ":")) + "\n"
        try:
            if self.fs is not None:
                self.fs.append_line(self.path, line.encode("utf-8"))
                return
            fd = os.open(
                self.path,
                os.O_APPEND | os.O_CREAT | os.O_WRONLY,
                0o644,
            )
            try:
                os.write(fd, line.encode("utf-8"))
            finally:
                os.close(fd)
        except OSError:
            # Telemetry must never take down a solve; drop the event.
            pass

    def read(self) -> List[Dict[str, Any]]:
        """Every complete, parseable event, in append order."""
        return list(self.iter_events())

    def iter_events(self) -> Iterator[Dict[str, Any]]:
        try:
            handle = open(self.path, "rb")
        except OSError:
            return
        with handle:
            for raw in handle:
                if not raw.endswith(b"\n"):
                    # torn final write from a killed process
                    continue
                try:
                    event = json.loads(raw.decode("utf-8"))
                except (UnicodeDecodeError, ValueError):
                    continue
                if isinstance(event, dict) and "kind" in event:
                    yield event

    def __len__(self) -> int:
        return sum(1 for _ in self.iter_events())
