"""``repro audit`` — post-hoc solve timelines from spool artifacts.

Reconstructs, for every task a spool has ever seen, the full
submit → claim → progress → ack (or requeue/dead-letter) story by joining
three durable sources:

* the **event log** (``events.jsonl``) for ordered lifecycle transitions
  with timestamps;
* **result files** for the authoritative outcome (method, status,
  objective, worker, solve time);
* **dead-letter files** for terminal failures.

The join is deliberately forgiving: a spool whose event log was rotated
away still audits from result files alone, and events for compacted
results still describe the lifecycle.  Output is a per-task summary table
(or JSON), plus an optional single-task timeline listing every event.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional

from repro.observability import events as _events
from repro.observability.events import EventLog

#: Event kinds that terminate one delivery of a task.
_TERMINAL_KINDS = (_events.EVENT_ACK, _events.EVENT_DEAD_LETTER)


def _load_json_dir(directory: str) -> Dict[str, Dict[str, Any]]:
    out: Dict[str, Dict[str, Any]] = {}
    try:
        names = os.listdir(directory)
    except OSError:
        return out
    for name in sorted(names):
        if not name.endswith(".json"):
            continue
        path = os.path.join(directory, name)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                record = json.load(handle)
        except (OSError, ValueError):
            continue
        if isinstance(record, dict):
            out[name[: -len(".json")]] = record
    return out


def build_timelines(directory: str) -> List[Dict[str, Any]]:
    """One timeline record per task, sorted by first-seen time.

    Each record carries the raw ``events`` list plus derived fields:
    ``queue_wait_s`` (submit → first claim), ``solve_s`` (solve_start →
    solve_end), ``attempts`` (claims observed), ``outcome`` and the
    result-file overlay when one exists.
    """
    by_task: Dict[str, Dict[str, Any]] = {}

    def task(task_id: str) -> Dict[str, Any]:
        return by_task.setdefault(task_id, {"task_id": task_id, "events": []})

    for event in EventLog.for_spool(directory).iter_events():
        task_id = event.get("task_id")
        if task_id is None:
            continue
        task(str(task_id))["events"].append(event)

    results_dir = os.path.join(directory, "results")
    for task_id, result in _load_json_dir(results_dir).items():
        task(task_id)["result"] = result
    failed_dir = os.path.join(directory, "failed")
    for task_id, failure in _load_json_dir(failed_dir).items():
        task(task_id)["failure"] = failure

    timelines = []
    for record in by_task.values():
        _derive(record)
        timelines.append(record)
    timelines.sort(key=lambda r: (r.get("first_ts") or 0.0, r["task_id"]))
    return timelines


def _first_ts(record: Dict[str, Any], kind: str) -> Optional[float]:
    for event in record["events"]:
        if event.get("kind") == kind:
            return event.get("ts")
    return None


def _count(events: List[Dict[str, Any]], kind: str) -> int:
    return sum(1 for e in events if e.get("kind") == kind)


def _derive(record: Dict[str, Any]) -> None:
    events: List[Dict[str, Any]] = record["events"]
    record["first_ts"] = events[0].get("ts") if events else None
    record["attempts"] = _count(events, _events.EVENT_CLAIM)
    record["requeues"] = _count(events, _events.EVENT_REQUEUE)
    record["progress_reports"] = _count(events, _events.EVENT_PROGRESS)

    submitted = _first_ts(record, _events.EVENT_SUBMIT)
    claimed = _first_ts(record, _events.EVENT_CLAIM)
    if submitted is not None and claimed is not None:
        record["queue_wait_s"] = claimed - submitted
    else:
        record["queue_wait_s"] = None
    solve_start = _first_ts(record, _events.EVENT_SOLVE_START)
    solve_end = _first_ts(record, _events.EVENT_SOLVE_END)
    if solve_start is not None and solve_end is not None:
        record["solve_s"] = solve_end - solve_start
    else:
        record["solve_s"] = None

    result = record.get("result")
    failure = record.get("failure")
    if result is not None:
        if result.get("cached"):
            record["outcome"] = "cached"
        else:
            status = result.get("status")
            record["outcome"] = status or ("ok" if result.get("ok") else "error")
        record["method"] = result.get("method")
        record["objective"] = result.get("objective")
        record["worker_id"] = result.get("worker_id")
        if not result.get("ok", True):
            record["error"] = result.get("error")
            if result.get("details"):
                # structured diagnostics riding the error envelope (e.g. a
                # FrontierExplosion's labels-created / peak-frontier counts)
                record["error_details"] = result["details"]
    elif failure is not None:
        record["outcome"] = "dead-letter"
        record["error"] = failure.get("error")
        if failure.get("details"):
            record["error_details"] = failure["details"]
    elif any(e.get("kind") in _TERMINAL_KINDS for e in events):
        # acked but the result file was compacted away since
        record["outcome"] = "acked"
    elif claimed is not None:
        record["outcome"] = "in-flight"
    else:
        record["outcome"] = "pending"

    kinds = [e.get("kind") for e in events]
    record["complete"] = (
        _events.EVENT_SUBMIT in kinds
        and _events.EVENT_CLAIM in kinds
        and _events.EVENT_ACK in kinds
    )

    # trace join: lifecycle events and span records stamp the task's
    # trace_id, so the audit table can hand off to ``repro trace``
    trace_id = None
    for event in events:
        if event.get("trace_id"):
            trace_id = str(event["trace_id"])
            break
    record["trace_id"] = trace_id


def render_audit(
    timelines: List[Dict[str, Any]],
    task_id: Optional[str] = None,
) -> str:
    """The per-task summary table, or one task's full event timeline."""
    from repro.analysis.reporting import format_table

    if task_id is not None:
        matches = [r for r in timelines if r["task_id"] == task_id]
        if not matches:
            return f"no such task in this spool: {task_id}"
        record = matches[0]
        header = f"task {task_id}: {record.get('outcome')}"
        if record.get("trace_id"):
            header += f" (trace {record['trace_id']})"
        lines = [header]
        base = record.get("first_ts")
        skip = ("ts", "kind", "task_id")
        for event in record["events"]:
            ts = event.get("ts", 0.0)
            offset = ts - base if base is not None else 0.0
            detail = {k: v for k, v in event.items() if k not in skip}
            detail_text = ""
            if detail:
                detail_text = " " + json.dumps(detail, sort_keys=True)
            kind = str(event.get("kind"))
            lines.append(f"  +{offset:8.3f}s {kind:<12}{detail_text}")
        result = record.get("result")
        if result is not None:
            summary = " ".join(
                [
                    f"method={result.get('method')}",
                    f"status={result.get('status')}",
                    f"objective={result.get('objective')}",
                    f"worker={result.get('worker_id')}",
                ]
            )
            lines.append(f"  result: {summary}")
        if record.get("error"):
            lines.append(f"  error: {record['error']}")
        if record.get("error_details"):
            lines.append("  error details: "
                         + json.dumps(record["error_details"], sort_keys=True))
        return "\n".join(lines)

    rows = []
    for record in timelines:
        objective = record.get("objective")
        queue_wait = record.get("queue_wait_s")
        solve_s = record.get("solve_s")
        worker = record.get("worker_id") or "-"
        rows.append(
            {
                "task": record["task_id"][-17:],
                "outcome": record.get("outcome"),
                "method": record.get("method") or "-",
                "objective": objective if objective is not None else "-",
                "attempts": record.get("attempts", 0),
                "queue_wait_s": queue_wait if queue_wait is not None else "-",
                "solve_s": solve_s if solve_s is not None else "-",
                "progress": record.get("progress_reports", 0),
                "worker": worker[-14:],
                "trace": (record.get("trace_id") or "-")[:16],
            }
        )
    complete = sum(1 for r in timelines if r.get("complete"))
    table = format_table(rows, title="solve audit", precision=4)
    note = f"{complete} with complete submit->claim->ack timelines"
    return f"{table}\n{len(timelines)} tasks, {note}"
