"""Fleet observability: metrics registry, event log, live top, post-hoc audit.

The package is stdlib-only and import-light on purpose — ``metrics`` and
``events`` are imported by every hot layer (spool, worker, runner, cache,
janitor), while the heavier ``top``/``audit`` renderers are only pulled in
by their CLI commands.
"""

from repro.observability.events import EVENTS_FILENAME, EventLog
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_metrics,
    parse_prometheus_text,
)
from repro.observability.tracing import (
    ProfileAccumulator,
    Span,
    Tracer,
    chrome_trace,
    group_traces,
    load_spans,
)

__all__ = [
    "Counter",
    "EVENTS_FILENAME",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ProfileAccumulator",
    "Span",
    "Tracer",
    "chrome_trace",
    "default_metrics",
    "group_traces",
    "load_spans",
    "parse_prometheus_text",
]
