"""Process-local metrics registry: counters, gauges, bounded histograms.

Everything the fleet knows about itself — claim rates, spool depths, cache
hit splits, solve latencies, incumbent convergence — funnels through one
:class:`MetricsRegistry`.  The registry is deliberately small and
dependency-free:

* **thread-safe** — one registry-wide lock; every hot-path operation
  (counter increment, histogram observe) is a dict lookup plus a couple of
  float updates under it;
* **labelled** — each metric holds independent series per label set
  (``solve_seconds.observe(0.2, method="greedy")``), the same data model
  Prometheus uses;
* **bounded** — histograms keep exact ``count``/``sum``/``min``/``max`` and
  a fixed-size reservoir (Vitter's algorithm R with a deterministic RNG) for
  quantile estimates, so a million observations cost the same memory as a
  thousand;
* **dual serialisation** — :meth:`MetricsRegistry.snapshot` returns a
  JSON-safe dict for artifacts and dashboards, :meth:`to_prometheus` emits
  the Prometheus text exposition format (histograms as summaries) for
  anything that scrapes.

Wired-in call sites share the process-wide :func:`default_metrics` registry;
tests and embedders can pass their own registry into the worker, queue,
runner and janitor instead.
"""

from __future__ import annotations

import json
import math
import os
import random
import re
import tempfile
import threading
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_metrics",
    "parse_prometheus_text",
]

#: Label-set key: a tuple of sorted ``(label, value)`` pairs.
LabelKey = Tuple[Tuple[str, str], ...]

#: Quantiles exported by histogram snapshots and the Prometheus summary.
SUMMARY_QUANTILES = (0.5, 0.9, 0.99)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((name, str(value)) for name, value in labels.items()))


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def _format_labels(key: LabelKey, extra: Tuple[Tuple[str, str], ...] = ()) -> str:
    pairs = [*key, *extra]
    if not pairs:
        return ""
    body = ",".join(f'{name}="{_escape_label_value(value)}"' for name, value in pairs)
    return "{" + body + "}"


class _Metric:
    """Shared plumbing: a name, help text and one series per label set."""

    kind = "untyped"

    def __init__(self, name: str, help: str, lock: threading.RLock) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self._lock = lock
        self._series: Dict[LabelKey, Any] = {}

    def _check_labels(self, labels: Dict[str, Any]) -> LabelKey:
        for label in labels:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        return _label_key(labels)

    def labels_seen(self) -> List[LabelKey]:
        with self._lock:
            return list(self._series)


class Counter(_Metric):
    """Monotonically increasing count (``repro_spool_acks_total``-style)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        key = self._check_labels(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        with self._lock:
            return self._series.get(_label_key(labels), 0.0)

    def _snapshot_series(self, key: LabelKey) -> Dict[str, Any]:
        return {"labels": dict(key), "value": self._series[key]}

    def _prometheus_lines(self) -> Iterable[str]:
        for key in sorted(self._series):
            yield f"{self.name}{_format_labels(key)} {_format_value(self._series[key])}"


class Gauge(_Metric):
    """A value that goes up and down (queue depth, lease age, bytes held)."""

    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        key = self._check_labels(labels)
        with self._lock:
            self._series[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        key = self._check_labels(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: Any) -> float:
        with self._lock:
            return self._series.get(_label_key(labels), 0.0)

    _snapshot_series = Counter._snapshot_series
    _prometheus_lines = Counter._prometheus_lines


class _Reservoir:
    """Exact count/sum/min/max plus a bounded sample for quantiles.

    Vitter's algorithm R: once the reservoir is full, observation ``n``
    replaces a random slot with probability ``size/n`` — an unbiased uniform
    sample of everything seen, at fixed memory.  The RNG is deterministic
    per series so snapshots are reproducible in tests.
    """

    __slots__ = ("count", "total", "minimum", "maximum", "sample", "size", "_rng")

    def __init__(self, size: int) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self.sample: List[float] = []
        self.size = size
        self._rng = random.Random(0x5EED)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        if len(self.sample) < self.size:
            self.sample.append(value)
        else:
            slot = self._rng.randrange(self.count)
            if slot < self.size:
                self.sample[slot] = value

    def quantile(self, q: float) -> float:
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if not self.sample:
            return math.nan
        ordered = sorted(self.sample)
        # nearest-rank with linear interpolation between adjacent samples
        position = q * (len(ordered) - 1)
        low = int(position)
        high = min(low + 1, len(ordered) - 1)
        fraction = position - low
        return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


class Histogram(_Metric):
    """Distribution sketch: exact moments, reservoir-estimated quantiles."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        lock: threading.RLock,
        reservoir_size: int = 1024,
    ) -> None:
        super().__init__(name, help, lock)
        if reservoir_size < 1:
            raise ValueError("reservoir_size must be positive")
        self.reservoir_size = reservoir_size

    def observe(self, value: float, **labels: Any) -> None:
        key = self._check_labels(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _Reservoir(self.reservoir_size)
            series.observe(float(value))

    def count(self, **labels: Any) -> int:
        with self._lock:
            series = self._series.get(_label_key(labels))
            return series.count if series is not None else 0

    def sum(self, **labels: Any) -> float:
        with self._lock:
            series = self._series.get(_label_key(labels))
            return series.total if series is not None else 0.0

    def quantile(self, q: float, **labels: Any) -> float:
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        with self._lock:
            series = self._series.get(_label_key(labels))
            return series.quantile(q) if series is not None else math.nan

    def _snapshot_series(self, key: LabelKey) -> Dict[str, Any]:
        series: _Reservoir = self._series[key]
        return {
            "labels": dict(key),
            "count": series.count,
            "sum": series.total,
            "min": series.minimum,
            "max": series.maximum,
            "quantiles": {str(q): series.quantile(q) for q in SUMMARY_QUANTILES},
        }

    def _prometheus_lines(self) -> Iterable[str]:
        for key in sorted(self._series):
            series: _Reservoir = self._series[key]
            labels_text = _format_labels(key)
            for q in SUMMARY_QUANTILES:
                quantile_labels = _format_labels(key, (("quantile", str(q)),))
                quantile_value = _format_value(series.quantile(q))
                yield f"{self.name}{quantile_labels} {quantile_value}"
            yield f"{self.name}_sum{labels_text} {_format_value(series.total)}"
            yield f"{self.name}_count{labels_text} {series.count}"


class MetricsRegistry:
    """Named metrics, one shared lock, JSON + Prometheus serialisation.

    ``counter``/``gauge``/``histogram`` are idempotent per name (the same
    object comes back), so any module can declare the metrics it uses
    without coordinating; asking for an existing name as a different kind
    raises.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._metrics: Dict[str, _Metric] = {}

    def _get_or_create(self, cls: type, name: str, help: str, **kwargs: Any):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, help, self._lock, **kwargs)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {metric.kind}",
                )
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self, name: str, help: str = "", reservoir_size: int = 1024
    ) -> Histogram:
        return self._get_or_create(
            Histogram,
            name,
            help,
            reservoir_size=reservoir_size,
        )

    def get(self, name: str) -> Optional[_Metric]:
        with self._lock:
            return self._metrics.get(name)

    def reset(self) -> None:
        """Drop every metric (test isolation between cases)."""
        with self._lock:
            self._metrics.clear()

    # ------------------------------------------------------------ serialise
    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe view of every series of every metric."""
        with self._lock:
            out: Dict[str, Any] = {"metrics": {}}
            for name in sorted(self._metrics):
                metric = self._metrics[name]
                out["metrics"][name] = {
                    "kind": metric.kind,
                    "help": metric.help,
                    "series": [
                        metric._snapshot_series(key)
                        for key in sorted(metric._series)
                    ],
                }
            return out

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (histograms as summaries)."""
        with self._lock:
            lines: List[str] = []
            for name in sorted(self._metrics):
                metric = self._metrics[name]
                if metric.help:
                    lines.append(f"# HELP {name} {_escape_help(metric.help)}")
                kind = "summary" if metric.kind == "histogram" else metric.kind
                lines.append(f"# TYPE {name} {kind}")
                lines.extend(metric._prometheus_lines())
            return "\n".join(lines) + ("\n" if lines else "")

    def write_snapshot(self, path: str) -> None:
        """Atomically write the JSON snapshot to ``path``."""
        _write_atomic(path, json.dumps(self.snapshot(), indent=2, sort_keys=True))

    def write_prometheus(self, path: str) -> None:
        """Atomically write the Prometheus exposition text to ``path``."""
        _write_atomic(path, self.to_prometheus())


def _write_atomic(path: str, text: str) -> None:
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


# ---------------------------------------------------------------- parsing
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^{}]*)\})?"
    r"\s+(?P<value>[^\s]+)"
    r"(?:\s+(?P<timestamp>-?\d+))?$"
)
_LABEL_PAIR_RE = re.compile(
    r'\s*(?P<label>[a-zA-Z_][a-zA-Z0-9_]*)\s*=\s*"(?P<value>(?:[^"\\]|\\.)*)"\s*'
)


def _parse_value(text: str) -> float:
    lowered = text.lower()
    if lowered in ("+inf", "inf"):
        return math.inf
    if lowered == "-inf":
        return -math.inf
    if lowered == "nan":
        return math.nan
    return float(text)


def parse_prometheus_text(text: str) -> Dict[Tuple[str, LabelKey], float]:
    """Strictly parse exposition-format text into ``(name, labels) -> value``.

    Raises :class:`ValueError` on any line that does not match the grammar —
    the CI smoke step and the round-trip tests use this as the conformance
    check for :meth:`MetricsRegistry.to_prometheus`.
    """
    samples: Dict[Tuple[str, LabelKey], float] = {}
    for line_number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] in ("HELP", "TYPE"):
                if len(parts) < 3 or not _NAME_RE.match(parts[2]):
                    raise ValueError(
                        f"line {line_number}: malformed {parts[1]} comment",
                    )
                if parts[1] == "TYPE":
                    kind = parts[3].strip() if len(parts) == 4 else ""
                    if kind not in (
                        "counter",
                        "gauge",
                        "histogram",
                        "summary",
                        "untyped",
                    ):
                        raise ValueError(
                            f"line {line_number}: unknown TYPE {kind!r}",
                        )
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {line_number}: malformed sample {line!r}")
        labels: Dict[str, str] = {}
        body = match.group("labels")
        if body:
            position = 0
            while position < len(body):
                pair = _LABEL_PAIR_RE.match(body, position)
                if pair is None:
                    raise ValueError(
                        f"line {line_number}: malformed label set {body!r}",
                    )
                raw = pair.group("value")
                labels[pair.group("label")] = (
                    raw.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
                )
                position = pair.end()
                if position < len(body):
                    if body[position] != ",":
                        raise ValueError(
                            f"line {line_number}: malformed label set {body!r}",
                        )
                    position += 1
        key = (match.group("name"), _label_key(labels))
        samples[key] = _parse_value(match.group("value"))
    return samples


# ---------------------------------------------------------------- default
_default_lock = threading.Lock()
_default: Optional[MetricsRegistry] = None


def default_metrics() -> MetricsRegistry:
    """The process-wide registry every wired-in call site shares."""
    global _default
    if _default is None:
        with _default_lock:
            if _default is None:
                _default = MetricsRegistry()
    return _default
