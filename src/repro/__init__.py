"""repro — reproduction of Mei, Pawar & Widya (IPPS 2007).

"Optimal Assignment of a Tree-Structured Context Reasoning Procedure onto a
Host-Satellites System": given a tree of Context Reasoning Units (CRUs) whose
leaf sensors are physically wired to specific satellite devices, find the
partition of the tree between the host and the satellites that minimises the
end-to-end processing delay.

Quickstart
----------
>>> from repro import healthcare_scenario, solve
>>> problem = healthcare_scenario()
>>> result = solve(problem)                      # the paper's algorithm
>>> round(result.objective, 3) == round(solve(problem, method="brute-force").objective, 3)
True

Package layout
--------------
``repro.model``        problem model (CRU trees, platforms, profiles, costs)
``repro.graphs``       graph substrate (Dijkstra, k-shortest paths, trees)
``repro.core``         the paper's constructions and algorithms
``repro.baselines``    exact references and comparison heuristics
``repro.runtime``      solver registry, parallel batch runner, result cache
``repro.simulation``   discrete-event simulator of the host-satellites system
``repro.workloads``    scenario generators, incl. the paper's worked examples
``repro.extensions``   DAG-to-DAG generalisation (paper §6 future work)
``repro.analysis``     experiment drivers, complexity instrumentation, reports
"""

from repro.model import (
    AssignmentProblem,
    CRU,
    CRUTree,
    CommunicationCostModel,
    ExecutionProfile,
    Host,
    HostSatelliteSystem,
    Link,
    Satellite,
)
from repro.core import (
    Assignment,
    ColoredSSBSearch,
    DoublyWeightedGraph,
    SSBSearch,
    SSBWeighting,
    build_assignment_graph,
    color_tree,
    solve,
)
from repro.runtime import (
    BatchRunner,
    BatchTask,
    SolverRegistry,
    default_registry,
)
from repro.workloads import (
    healthcare_scenario,
    snmp_scenario,
    random_problem,
    figure4_dwg,
    paper_example_problem,
)

__version__ = "1.1.0"

__all__ = [
    "AssignmentProblem",
    "CRU",
    "CRUTree",
    "CommunicationCostModel",
    "ExecutionProfile",
    "Host",
    "HostSatelliteSystem",
    "Link",
    "Satellite",
    "Assignment",
    "ColoredSSBSearch",
    "DoublyWeightedGraph",
    "SSBSearch",
    "SSBWeighting",
    "build_assignment_graph",
    "color_tree",
    "solve",
    "BatchRunner",
    "BatchTask",
    "SolverRegistry",
    "default_registry",
    "healthcare_scenario",
    "snmp_scenario",
    "random_problem",
    "figure4_dwg",
    "paper_example_problem",
    "__version__",
]
