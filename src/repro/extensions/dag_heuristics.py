"""Heuristics for the DAG-tasks-to-DAG-resources problem (paper §6).

Three solvers of increasing cost:

* :func:`heft_placement` — HEFT-style list scheduling: rank tasks by upward
  rank (critical-path length to a sink), then greedily place each task on the
  feasible resource minimising its earliest finish time;
* :func:`genetic_dag_placement` — a genetic algorithm over the mapping vector
  (the approach the paper cites for the general problem);
* :func:`exhaustive_dag_placement` — exact enumeration for small instances,
  the oracle the heuristics are validated against in the test-suite.
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.extensions.dag_model import DAGPlacement, DAGTaskGraph, ResourceGraph


def _candidate_resources(tasks: DAGTaskGraph, resources: ResourceGraph,
                         task_id: str) -> List[str]:
    pinned = tasks.task(task_id).pinned_to
    if pinned is not None:
        return [pinned]
    return resources.resource_ids()


def upward_ranks(tasks: DAGTaskGraph, resources: ResourceGraph) -> Dict[str, float]:
    """HEFT upward rank: mean execution time plus the heaviest path to a sink."""
    speeds = [resources.resource(r).speed for r in resources.resource_ids()]
    mean_speed = sum(speeds) / len(speeds)
    ranks: Dict[str, float] = {}
    for task_id in reversed(tasks.topological_order()):
        own = tasks.task(task_id).work / mean_speed
        successors = tasks.successors(task_id)
        tail = max((ranks[s] + tasks.data_volume(task_id, s) for s in successors), default=0.0)
        ranks[task_id] = own + tail
    return ranks


def heft_placement(tasks: DAGTaskGraph, resources: ResourceGraph
                   ) -> Tuple[DAGPlacement, Dict[str, object]]:
    """Greedy earliest-finish-time list scheduling (HEFT-style)."""
    ranks = upward_ranks(tasks, resources)
    order = sorted(tasks.task_ids(), key=lambda t: ranks[t], reverse=True)
    # keep dependency order: a task can only be placed after its predecessors
    placed_order: List[str] = []
    remaining = set(order)
    while remaining:
        progressed = False
        for task_id in order:
            if task_id in remaining and all(p not in remaining for p in tasks.predecessors(task_id)):
                placed_order.append(task_id)
                remaining.discard(task_id)
                progressed = True
        if not progressed:  # pragma: no cover - impossible for DAGs
            raise RuntimeError("cyclic dependency encountered")

    mapping: Dict[str, str] = {}
    resource_free: Dict[str, float] = {r: 0.0 for r in resources.resource_ids()}
    finish: Dict[str, float] = {}

    for task_id in placed_order:
        best_resource = None
        best_finish = float("inf")
        for resource_id in _candidate_resources(tasks, resources, task_id):
            ready = 0.0
            feasible = True
            for producer in tasks.predecessors(task_id):
                transfer = resources.transfer_time(mapping[producer], resource_id,
                                                   tasks.data_volume(producer, task_id))
                if transfer == float("inf"):
                    feasible = False
                    break
                ready = max(ready, finish[producer] + transfer)
            if not feasible:
                continue
            begin = max(ready, resource_free[resource_id])
            end = begin + tasks.task(task_id).work / resources.resource(resource_id).speed
            if end < best_finish:
                best_finish = end
                best_resource = resource_id
        if best_resource is None:
            raise RuntimeError(f"no feasible resource for task {task_id!r}")
        mapping[task_id] = best_resource
        finish[task_id] = best_finish
        resource_free[best_resource] = best_finish

    placement = DAGPlacement(tasks, resources, mapping)
    return placement, {"makespan": placement.makespan(), "order": placed_order}


def random_dag_placement(tasks: DAGTaskGraph, resources: ResourceGraph,
                         seed: Optional[int] = None,
                         max_attempts: int = 500) -> DAGPlacement:
    """A random feasible placement (respects pinning and link availability)."""
    rng = random.Random(seed)
    for _ in range(max_attempts):
        mapping = {t: rng.choice(_candidate_resources(tasks, resources, t))
                   for t in tasks.task_ids()}
        placement = DAGPlacement(tasks, resources, mapping)
        if placement.is_feasible():
            return placement
    raise RuntimeError("could not sample a feasible placement; the resource graph may be too sparse")


def exhaustive_dag_placement(tasks: DAGTaskGraph, resources: ResourceGraph
                             ) -> Tuple[DAGPlacement, Dict[str, object]]:
    """Exact minimum-makespan placement by enumeration (small instances only)."""
    task_ids = tasks.task_ids()
    candidates = [_candidate_resources(tasks, resources, t) for t in task_ids]
    best: Optional[DAGPlacement] = None
    best_makespan = float("inf")
    enumerated = 0
    for combo in itertools.product(*candidates):
        enumerated += 1
        placement = DAGPlacement(tasks, resources, dict(zip(task_ids, combo)))
        if not placement.is_feasible():
            continue
        makespan = placement.makespan()
        if makespan < best_makespan:
            best, best_makespan = placement, makespan
    if best is None:
        raise RuntimeError("no feasible placement exists")
    return best, {"enumerated": enumerated, "makespan": best_makespan}


def genetic_dag_placement(tasks: DAGTaskGraph, resources: ResourceGraph,
                          population_size: int = 30, generations: int = 40,
                          mutation_rate: float = 0.1, seed: Optional[int] = None
                          ) -> Tuple[DAGPlacement, Dict[str, object]]:
    """Genetic algorithm over the task->resource mapping vector."""
    rng = random.Random(seed)
    task_ids = tasks.task_ids()
    candidates = [_candidate_resources(tasks, resources, t) for t in task_ids]

    def random_genome() -> List[str]:
        return [rng.choice(c) for c in candidates]

    def fitness(genome: Sequence[str]) -> float:
        placement = DAGPlacement(tasks, resources, dict(zip(task_ids, genome)))
        if not placement.is_feasible():
            return float("inf")
        return placement.makespan()

    population = [random_genome() for _ in range(population_size)]
    scores = [fitness(g) for g in population]
    evaluations = population_size

    for _ in range(generations):
        ranked = sorted(range(population_size), key=lambda i: scores[i])
        elite = [list(population[i]) for i in ranked[:2]]
        next_population = elite[:]
        while len(next_population) < population_size:
            a, b = (population[rng.choice(ranked[:max(2, population_size // 2)])] for _ in range(2))
            cut = rng.randrange(1, len(task_ids)) if len(task_ids) > 1 else 0
            child = list(a[:cut]) + list(b[cut:])
            for i, options in enumerate(candidates):
                if rng.random() < mutation_rate:
                    child[i] = rng.choice(options)
            next_population.append(child)
        population = next_population
        scores = [fitness(g) for g in population]
        evaluations += population_size

    best_index = min(range(population_size), key=lambda i: scores[i])
    best = DAGPlacement(tasks, resources, dict(zip(task_ids, population[best_index])))
    return best, {"makespan": scores[best_index], "evaluations": evaluations}
