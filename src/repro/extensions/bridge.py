"""Bridge between the paper's tree model and the §6 DAG generalisation.

The DAG-extension heuristics (:mod:`repro.extensions.dag_heuristics`) solve
the general *DAG-tasks-onto-resource-graph* problem.  A CRU tree on a
host-satellites star is a special case, so every tree instance can be lifted
into the general model, handed to HEFT or the genetic placer, and the
resulting placement projected back onto a feasible tree assignment.  That is
what makes the DAG solvers *batch-runnable*: through this bridge they appear
in the runtime solver registry (``dag-heft``, ``dag-genetic``) alongside the
paper's algorithm and sweep the same
:class:`~repro.model.problem.AssignmentProblem` instances.

Two caveats are inherent and documented rather than hidden:

* the general model charges execution as ``work / resource.speed`` with one
  speed per resource, while the tree profiles carry independent host and
  satellite times per CRU — the bridge uses the satellite time as the work
  and the mean host speed-up as the host speed, an approximation that is
  exact for instances generated with a uniform speed-up (the paper's
  experimental regime);
* a general placement may violate the paper's subtree rule (a satellite CRU
  needs its whole subtree on the same satellite), so the projection keeps a
  CRU offloaded only when its entire processing subtree landed on its
  correspondent satellite and reverts everything else to the host.  The
  projected delay can therefore differ from the DAG makespan; both are
  reported in the solver details.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.assignment import Assignment, HOST_DEVICE
from repro.extensions.dag_model import (
    DAGPlacement,
    DAGTask,
    DAGTaskGraph,
    Resource,
    ResourceGraph,
)
from repro.model.problem import AssignmentProblem

#: Resource id the bridge gives the host (matches the placement device id).
HOST_RESOURCE = HOST_DEVICE


def problem_to_dag(problem: AssignmentProblem) -> Tuple[DAGTaskGraph, ResourceGraph]:
    """Lift a tree instance into the general DAG-tasks/resource-graph model.

    Tasks are the CRUs; dependencies run child -> parent (context flows up
    the tree) carrying the communication cost as the data volume over
    unit-rate links, so transfer times equal the tree model's ``c_{i,j}``.
    Sensors are pinned to their wired satellite and the root to the host.
    Satellites are not interconnected — exactly the star of the paper.
    """
    tree = problem.tree

    resources = ResourceGraph()
    host_speed = _mean_host_speedup(problem)
    resources.add_resource(Resource(HOST_RESOURCE, speed=host_speed))
    for satellite_id in problem.system.satellite_ids():
        resources.add_resource(Resource(satellite_id, speed=1.0))
        resources.connect(HOST_RESOURCE, satellite_id, rate=1.0)

    tasks = DAGTaskGraph()
    for cru_id in tree.cru_ids():
        cru = tree.cru(cru_id)
        if cru.is_sensor:
            tasks.add_task(DAGTask(cru_id, work=0.0,
                                   pinned_to=problem.satellite_of_sensor(cru_id)))
        elif cru_id == tree.root_id:
            tasks.add_task(DAGTask(cru_id, work=problem.satellite_time(cru_id),
                                   pinned_to=HOST_RESOURCE))
        else:
            tasks.add_task(DAGTask(cru_id, work=problem.satellite_time(cru_id)))
    for parent_id, child_id in tree.edges():
        tasks.add_dependency(child_id, parent_id,
                             data_volume=problem.comm_cost(child_id, parent_id))
    return tasks, resources


def dag_placement_to_assignment(problem: AssignmentProblem,
                                placement: DAGPlacement) -> Assignment:
    """Project a general placement onto a feasible tree assignment.

    A processing CRU stays offloaded only when its whole processing subtree
    was mapped to one satellite and that satellite is its correspondent one;
    the maximal such subtrees become the cut, everything else runs on the
    host.  The result always satisfies the paper's feasibility rules.
    """
    tree = problem.tree
    mapping = placement.mapping

    offloadable: Dict[str, bool] = {}
    for cru_id in tree.postorder():
        if tree.cru(cru_id).is_sensor:
            continue
        device = mapping.get(cru_id)
        offloadable[cru_id] = (
            device is not None
            and device != HOST_RESOURCE
            and device == problem.correspondent_satellite(cru_id)
            and all(offloadable[child] for child in tree.children_ids(cru_id)
                    if tree.cru(child).is_processing)
        )

    cut_children: List[str] = []

    def collect(cru_id: str) -> None:
        for child in tree.children_ids(cru_id):
            if not tree.cru(child).is_processing:
                continue
            if offloadable[child]:
                cut_children.append(child)
            else:
                collect(child)

    # the root is pinned to the host, so the walk starts below it
    collect(tree.root_id)
    return Assignment.from_cut(problem, cut_children)


def _mean_host_speedup(problem: AssignmentProblem) -> float:
    """Mean satellite-to-host execution-time ratio over the processing CRUs."""
    ratios = []
    for cru_id in problem.tree.processing_ids():
        host = problem.host_time(cru_id)
        sat = problem.satellite_time(cru_id)
        if host > 0 and sat > 0:
            ratios.append(sat / host)
    if not ratios:
        return 1.0
    return sum(ratios) / len(ratios)
