"""Dynamic re-assignment when profiles drift (paper §1 motivation).

Context-aware applications adapt to "communication and computation
environment context" changes: link quality degrades, a device gets busy, a
sensor's sampling rate changes.  This module models such drift as
multiplicative factors applied to the execution-time profile and the
communication costs, and provides :class:`DynamicReassigner`, a small
controller that re-runs the optimal assignment when the currently deployed
assignment's delay deviates from the optimum by more than a configurable
threshold — the paper's "dynamic reconfiguration" research interest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.assignment import Assignment
from repro.core.solver import solve
from repro.model.costs import CommunicationCostModel
from repro.model.problem import AssignmentProblem
from repro.model.profiles import ExecutionProfile


@dataclass(frozen=True)
class ProfileDrift:
    """A multiplicative change of the timing environment.

    ``host_factors`` / ``satellite_factors`` scale per-CRU execution times;
    ``comm_factors`` scales per-edge communication costs.  Missing entries
    default to 1.0 (no change).
    """

    host_factors: Mapping[str, float] = field(default_factory=dict)
    satellite_factors: Mapping[str, float] = field(default_factory=dict)
    comm_factors: Mapping[Tuple[str, str], float] = field(default_factory=dict)

    def apply(self, problem: AssignmentProblem) -> AssignmentProblem:
        """A new problem instance with the drift applied."""
        profile = ExecutionProfile()
        for cru_id in problem.tree.cru_ids():
            profile.set_host_time(
                cru_id,
                problem.host_time(cru_id) * float(self.host_factors.get(cru_id, 1.0)))
            profile.set_satellite_time(
                cru_id,
                problem.satellite_time(cru_id) * float(self.satellite_factors.get(cru_id, 1.0)))
        costs = CommunicationCostModel()
        for (child, parent), seconds in problem.costs.costs().items():
            factor = float(self.comm_factors.get((child, parent), 1.0))
            costs.set_cost(child, parent, seconds * factor)
        return AssignmentProblem(
            tree=problem.tree,
            system=problem.system,
            sensor_attachment=problem.sensor_attachment,
            profile=profile,
            costs=costs,
            name=f"{problem.name}+drift",
        )


@dataclass
class ReassignmentDecision:
    """Outcome of one controller step."""

    reassigned: bool
    deployed_delay: float
    optimal_delay: float
    relative_gap: float
    assignment: Assignment


class DynamicReassigner:
    """Keeps an assignment deployed and re-optimises when it degrades.

    ``threshold`` is the relative delay gap (deployed vs optimal under the
    *current* profiles) above which a re-assignment is triggered; migrations
    have a cost in practice, so small gaps are tolerated.
    """

    def __init__(self, problem: AssignmentProblem, threshold: float = 0.1,
                 method: str = "colored-ssb") -> None:
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        self.threshold = threshold
        self.method = method
        self.problem = problem
        self.deployed = solve(problem, method=method).assignment
        self.history: List[ReassignmentDecision] = []

    def step(self, drift: Optional[ProfileDrift] = None) -> ReassignmentDecision:
        """Apply one drift step and decide whether to re-assign."""
        if drift is not None:
            self.problem = drift.apply(self.problem)

        # evaluate the currently deployed placement under the new profiles
        deployed_now = Assignment(self.problem, self.deployed.placement)
        deployed_delay = deployed_now.end_to_end_delay()
        optimal = solve(self.problem, method=self.method)
        optimal_delay = optimal.objective
        gap = 0.0 if optimal_delay == 0 else (deployed_delay - optimal_delay) / optimal_delay

        reassign = gap > self.threshold
        if reassign:
            self.deployed = optimal.assignment
        decision = ReassignmentDecision(
            reassigned=reassign,
            deployed_delay=deployed_delay,
            optimal_delay=optimal_delay,
            relative_gap=gap,
            assignment=self.deployed,
        )
        self.history.append(decision)
        return decision

    def reassignment_count(self) -> int:
        return sum(1 for d in self.history if d.reassigned)
