"""Paper §6 future work: beyond trees and star networks.

The paper closes by announcing work on the general *DAG-tasks-to-DAG-resources*
assignment problem, for which no polynomial exact algorithm is expected, and
names branch-and-bound and genetic algorithms as candidate approaches.  This
subpackage provides that generalisation so the reproduction covers the stated
research agenda:

* :mod:`~repro.extensions.dag_model` — DAG task graphs, arbitrary resource
  graphs, placements and their makespan/delay evaluation;
* :mod:`~repro.extensions.dag_heuristics` — list-scheduling (HEFT-style) and
  genetic heuristics, plus an exhaustive solver for small instances;
* :mod:`~repro.extensions.dynamic` — re-assignment when profiles drift at run
  time (the "instantaneous application adaptation" motivation of §1);
* :mod:`~repro.extensions.bridge` — lifts tree instances into the general
  model and projects placements back, making the DAG heuristics available as
  registered solvers (``dag-heft``, ``dag-genetic``) for the batch runtime.
"""

from repro.extensions.dag_model import (
    DAGTask,
    DAGTaskGraph,
    Resource,
    ResourceGraph,
    DAGPlacement,
)
from repro.extensions.dag_heuristics import (
    heft_placement,
    random_dag_placement,
    exhaustive_dag_placement,
    genetic_dag_placement,
)
from repro.extensions.bridge import dag_placement_to_assignment, problem_to_dag
from repro.extensions.dynamic import DynamicReassigner, ProfileDrift

__all__ = [
    "DAGTask",
    "DAGTaskGraph",
    "Resource",
    "ResourceGraph",
    "DAGPlacement",
    "heft_placement",
    "random_dag_placement",
    "exhaustive_dag_placement",
    "genetic_dag_placement",
    "DynamicReassigner",
    "ProfileDrift",
    "problem_to_dag",
    "dag_placement_to_assignment",
]
