"""DAG task graphs onto arbitrary resource graphs (paper §6 future work).

The tree model of the paper assumes (a) a tree-shaped reasoning procedure and
(b) a star-shaped resource network.  The general problem drops both: tasks
form a DAG (a context value may feed several higher-level reasoners) and
resources form an arbitrary graph with per-link transfer rates.  This module
defines that model and the evaluation of a placement's end-to-end delay
(schedule length), which the heuristics of
:mod:`repro.extensions.dag_heuristics` optimise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.graphs.connectivity import topological_order
from repro.graphs.digraph import DiGraph


@dataclass(frozen=True)
class DAGTask:
    """One task of the generalised model.

    ``work`` is the nominal computation amount; the execution time on a
    resource is ``work / resource.speed``.  Sources of the DAG (no
    predecessors) usually model sensors and carry ``pinned_to`` — the resource
    they must execute on, generalising the paper's sensor attachment.
    """

    task_id: str
    work: float = 1.0
    pinned_to: Optional[str] = None
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if self.work < 0:
            raise ValueError("task work must be non-negative")


class DAGTaskGraph:
    """A directed acyclic graph of tasks with per-edge data volumes."""

    def __init__(self) -> None:
        self._graph = DiGraph()
        self._tasks: Dict[str, DAGTask] = {}
        self._data: Dict[Tuple[str, str], float] = {}

    # ---------------------------------------------------------------- build
    def add_task(self, task: DAGTask) -> DAGTask:
        if task.task_id in self._tasks:
            raise ValueError(f"duplicate task id {task.task_id!r}")
        self._tasks[task.task_id] = task
        self._graph.add_node(task.task_id)
        return task

    def add_dependency(self, producer_id: str, consumer_id: str, data_volume: float = 0.0) -> None:
        """``producer -> consumer``: the consumer needs the producer's output."""
        if producer_id not in self._tasks or consumer_id not in self._tasks:
            raise KeyError("both endpoints must be added as tasks first")
        if data_volume < 0:
            raise ValueError("data volume must be non-negative")
        self._graph.add_edge(producer_id, consumer_id)
        self._data[(producer_id, consumer_id)] = float(data_volume)
        # adding the edge must keep the graph acyclic
        topological_order(self._graph)

    # --------------------------------------------------------------- queries
    def task(self, task_id: str) -> DAGTask:
        return self._tasks[task_id]

    def task_ids(self) -> List[str]:
        return list(self._tasks)

    def dependencies(self) -> List[Tuple[str, str]]:
        return list(self._data)

    def data_volume(self, producer_id: str, consumer_id: str) -> float:
        return self._data[(producer_id, consumer_id)]

    def predecessors(self, task_id: str) -> List[str]:
        return self._graph.predecessors(task_id)

    def successors(self, task_id: str) -> List[str]:
        return self._graph.successors(task_id)

    def sources(self) -> List[str]:
        return [t for t in self._tasks if not self.predecessors(t)]

    def sinks(self) -> List[str]:
        return [t for t in self._tasks if not self.successors(t)]

    def topological_order(self) -> List[str]:
        return topological_order(self._graph)

    def __len__(self) -> int:
        return len(self._tasks)


@dataclass(frozen=True)
class Resource:
    """One execution resource (the generalisation of host / satellite)."""

    resource_id: str
    speed: float = 1.0
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if self.speed <= 0:
            raise ValueError("resource speed must be positive")


class ResourceGraph:
    """Resources plus pairwise transfer rates (bytes per second).

    Missing links mean the two resources cannot exchange data directly; the
    transfer time between co-located tasks is always zero.
    """

    def __init__(self) -> None:
        self._resources: Dict[str, Resource] = {}
        self._rates: Dict[Tuple[str, str], float] = {}

    def add_resource(self, resource: Resource) -> Resource:
        if resource.resource_id in self._resources:
            raise ValueError(f"duplicate resource id {resource.resource_id!r}")
        self._resources[resource.resource_id] = resource
        return resource

    def connect(self, a: str, b: str, rate: float) -> None:
        """Symmetric link between two resources with the given transfer rate."""
        if a not in self._resources or b not in self._resources:
            raise KeyError("both resources must be added first")
        if rate <= 0:
            raise ValueError("link rate must be positive")
        self._rates[(a, b)] = float(rate)
        self._rates[(b, a)] = float(rate)

    def resource(self, resource_id: str) -> Resource:
        return self._resources[resource_id]

    def resource_ids(self) -> List[str]:
        return list(self._resources)

    def are_connected(self, a: str, b: str) -> bool:
        return a == b or (a, b) in self._rates

    def transfer_time(self, a: str, b: str, data_volume: float) -> float:
        """Time to move ``data_volume`` from resource ``a`` to resource ``b``."""
        if a == b:
            return 0.0
        if (a, b) not in self._rates:
            return float("inf")
        return data_volume / self._rates[(a, b)]

    def __len__(self) -> int:
        return len(self._resources)


class DAGPlacement:
    """A mapping of every task onto a resource, with schedule evaluation.

    The delay model generalises the paper's: tasks execute as early as their
    inputs allow, each resource runs one task at a time (tasks are served in
    topological order of readiness), transfers are charged to the producing
    resource's outgoing link.  ``makespan()`` is the completion time of the
    last sink — the end-to-end delay of one frame through the DAG.
    """

    def __init__(self, tasks: DAGTaskGraph, resources: ResourceGraph,
                 mapping: Mapping[str, str]) -> None:
        self.tasks = tasks
        self.resources = resources
        self.mapping: Dict[str, str] = dict(mapping)
        missing = set(tasks.task_ids()) - set(self.mapping)
        if missing:
            raise ValueError(f"placement misses tasks: {sorted(missing)!r}")

    def feasibility_errors(self) -> List[str]:
        errors = []
        for task_id, resource_id in self.mapping.items():
            if resource_id not in self.resources.resource_ids():
                errors.append(f"task {task_id!r} mapped to unknown resource {resource_id!r}")
            pinned = self.tasks.task(task_id).pinned_to
            if pinned is not None and resource_id != pinned:
                errors.append(f"task {task_id!r} is pinned to {pinned!r} but mapped to {resource_id!r}")
        for producer, consumer in self.tasks.dependencies():
            a, b = self.mapping[producer], self.mapping[consumer]
            if not self.resources.are_connected(a, b):
                errors.append(f"dependency {producer!r}->{consumer!r} needs a link {a!r}->{b!r}")
        return errors

    def is_feasible(self) -> bool:
        return not self.feasibility_errors()

    def execution_time(self, task_id: str) -> float:
        task = self.tasks.task(task_id)
        resource = self.resources.resource(self.mapping[task_id])
        return task.work / resource.speed

    def schedule(self) -> Dict[str, Tuple[float, float]]:
        """(start, finish) times per task under list scheduling in topological order."""
        resource_free: Dict[str, float] = {r: 0.0 for r in self.resources.resource_ids()}
        finish: Dict[str, float] = {}
        start: Dict[str, float] = {}
        for task_id in self.tasks.topological_order():
            ready = 0.0
            for producer in self.tasks.predecessors(task_id):
                volume = self.tasks.data_volume(producer, task_id)
                transfer = self.resources.transfer_time(
                    self.mapping[producer], self.mapping[task_id], volume)
                ready = max(ready, finish[producer] + transfer)
            resource_id = self.mapping[task_id]
            begin = max(ready, resource_free[resource_id])
            end = begin + self.execution_time(task_id)
            start[task_id] = begin
            finish[task_id] = end
            resource_free[resource_id] = end
        return {t: (start[t], finish[t]) for t in finish}

    def makespan(self) -> float:
        """Completion time of the last task (end-to-end delay of one frame)."""
        schedule = self.schedule()
        if not schedule:
            return 0.0
        return max(end for _, end in schedule.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"DAGPlacement(tasks={len(self.mapping)}, makespan={self.makespan():.6g})"
