"""Benchmark smoke mode.

CI runs every ``benchmarks/bench_*.py`` file in a reduced "smoke" mode to
catch performance-path regressions without paying for the full sweeps.  The
switch is the ``REPRO_BENCH_SMOKE`` environment variable; benchmark modules
declare both their full and reduced parameters through :func:`smoke_scaled`
so the reduction is visible at the point of use.
"""

from __future__ import annotations

import os
from typing import TypeVar

SMOKE_ENV_VAR = "REPRO_BENCH_SMOKE"

T = TypeVar("T")


def smoke_mode() -> bool:
    """True when benchmarks should run with reduced parameters."""
    return os.environ.get(SMOKE_ENV_VAR, "") not in ("", "0")


def smoke_scaled(full: T, reduced: T) -> T:
    """``reduced`` in smoke mode, ``full`` otherwise."""
    return reduced if smoke_mode() else full
