"""Experiment drivers — one function per experiment id of DESIGN.md.

Each driver returns a list of plain dict rows (so the benchmarks, the CLI and
EXPERIMENTS.md all print identical numbers) plus whatever summary values its
assertions need.  The drivers deliberately avoid pytest/benchmark imports so
they can be reused anywhere.

Instance sweeps (E5, E8, E10, E11) fan out through the batch runtime
(:class:`repro.runtime.BatchRunner`): serial and in-process by default so the
numbers match the historical single-threaded drivers bit-for-bit, multicore
when ``REPRO_BATCH_WORKERS`` is set.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.complexity import fit_power_law, timed
from repro.core.assignment_graph import build_assignment_graph
from repro.core.coloring import color_tree
from repro.core.colored_ssb import ColoredSSBSearch
from repro.core.labeling import label_assignment_graph
from repro.core.solver import solve
from repro.core.ssb import SSBSearch
from repro.extensions.dag_heuristics import (
    exhaustive_dag_placement,
    genetic_dag_placement,
    heft_placement,
    random_dag_placement,
)
from repro.extensions.dag_model import DAGTask, DAGTaskGraph, Resource, ResourceGraph
from repro.model.problem import AssignmentProblem
from repro.runtime import BatchRunner
from repro.simulation import ExecutionPolicy, simulate_assignment
from repro.workloads import (
    dwg_scaling_family,
    figure4_dwg,
    healthcare_scenario,
    paper_example_problem,
    random_problem,
    snmp_scenario,
    tree_scaling_family,
)

ExperimentRow = Dict[str, object]


def _solved(report):
    """Re-raise batch errors-as-data so drivers fail with the solver's message
    (the behaviour the pre-runner serial loops had)."""
    for item in report:
        if not item.ok:
            raise RuntimeError(f"{item.method} failed on "
                               f"{item.tag or f'task {item.index}'}: {item.error}")
    return report


# ----------------------------------------------------------------------- E1
def figure4_experiment() -> Dict[str, object]:
    """E1: the Figure-4 walk-through of the SSB algorithm."""
    result = SSBSearch().search(figure4_dwg())
    rows: List[ExperimentRow] = []
    for it in result.iterations:
        rows.append({
            "iteration": it.index,
            "min_S_path_S": it.s_weight,
            "min_S_path_B": it.b_weight,
            "path_SSB": it.ssb_weight,
            "candidate_after": it.candidate_after,
            "edges_removed": len(it.removed_edge_keys),
        })
    return {
        "rows": rows,
        "optimal_ssb_weight": result.ssb_weight,
        "optimal_s_weight": result.s_weight,
        "optimal_b_weight": result.b_weight,
        "shortest_path_searches": result.shortest_path_searches,
        "termination": result.termination,
    }


# ----------------------------------------------------------------------- E2
def coloring_experiment(problem: Optional[AssignmentProblem] = None) -> Dict[str, object]:
    """E2: colour propagation and conflict detection on the Figure-2 tree."""
    problem = problem or paper_example_problem()
    colored = color_tree(problem)
    rows = [{
        "edge": f"{parent}->{child}",
        "satellite": colored.edge_satellite(parent, child) or "-",
        "color": colored.edge_color(parent, child) or "conflict",
        "conflicted": colored.is_conflicted(parent, child),
    } for parent, child in problem.tree.edges()]
    return {
        "rows": rows,
        "conflicted_edges": colored.conflicted_edges(),
        "forced_host_crus": colored.forced_host_crus(),
    }


# ----------------------------------------------------------------------- E3
def assignment_graph_experiment(problem: Optional[AssignmentProblem] = None) -> Dict[str, object]:
    """E3: structure of the coloured assignment graph."""
    problem = problem or paper_example_problem()
    graph = build_assignment_graph(problem)
    rows = [{
        "assignment_edge": f"F{edge.tail}->F{edge.head}",
        "crosses_tree_edge": "->".join(graph.tree_edge_of(edge)),
        "color": next(iter(edge.data["beta"].keys())),
        "sigma": edge.data["sigma"],
        "beta": sum(edge.data["beta"].values()),
    } for edge in graph.dwg.edges()]
    conflicted = graph.colored_tree.conflicted_edges()
    return {
        "rows": rows,
        "faces": graph.num_faces,
        "edges": graph.number_of_edges(),
        "tree_edges": len(problem.tree.edges()),
        "conflicted_tree_edges": len(conflicted),
    }


# ----------------------------------------------------------------------- E4
def labeling_experiment(problem: Optional[AssignmentProblem] = None) -> Dict[str, object]:
    """E4: the σ (Figure 8) and β labels of every tree edge."""
    problem = problem or paper_example_problem()
    sigma_labels, beta_labels = label_assignment_graph(problem)
    rows = [{
        "tree_edge": f"{parent}->{child}",
        "sigma_host_weight": sigma_labels[(parent, child)],
        "beta_satellite_weight": beta_labels[(parent, child)],
    } for parent, child in problem.tree.edges()]
    return {"rows": rows, "sigma_labels": sigma_labels, "beta_labels": beta_labels}


# ----------------------------------------------------------------------- E5
def adapted_ssb_experiment(problems: Optional[Sequence[AssignmentProblem]] = None
                           ) -> Dict[str, object]:
    """E5: the adapted SSB search end to end on representative instances."""
    if problems is None:
        problems = [paper_example_problem(), healthcare_scenario(), snmp_scenario()]
    report = _solved(BatchRunner().solve_many(problems, method="colored-ssb"))
    rows: List[ExperimentRow] = []
    for problem, item in zip(problems, report):
        rows.append({
            "instance": problem.name,
            "delay": item.objective,
            "host_load": item.assignment.host_load(),
            "max_satellite_load": item.assignment.max_satellite_load(),
            "iterations": item.details["iterations"],
            "expansions": item.details["expansions"],
            "termination": item.details["termination"],
            "graph_edges": item.details["assignment_graph_edges"],
        })
    return {"rows": rows}


# ----------------------------------------------------------------------- E6
def complexity_ssb_experiment(sizes: Sequence[int] = (8, 16, 32, 64, 128),
                              edges_per_node: int = 3, seed: int = 7) -> Dict[str, object]:
    """E6: empirical scaling of the general SSB algorithm (§4.2 claim O(|V|²|E|))."""
    rows: List[ExperimentRow] = []
    ns, times = [], []
    for n, dwg in dwg_scaling_family(sizes=sizes, edges_per_node=edges_per_node, seed=seed):
        search = SSBSearch(keep_trace=False)
        result, elapsed = timed(lambda d=dwg: search.search(d))
        rows.append({
            "nodes": n,
            "edges": dwg.number_of_edges(),
            "iterations": result.iteration_count,
            "time_s": elapsed,
            "ssb_weight": result.ssb_weight,
        })
        ns.append(n)
        times.append(max(elapsed, 1e-9))
    _, exponent = fit_power_law(ns, times)
    return {"rows": rows, "fitted_exponent": exponent, "predicted_exponent_upper_bound": 3.0}


# ----------------------------------------------------------------------- E7
def complexity_colored_experiment(sizes: Sequence[int] = (8, 12, 16, 20),
                                  n_satellites: int = 4, seed: int = 11) -> Dict[str, object]:
    """E7: empirical scaling of the adapted algorithm on coloured graphs (§5.4)."""
    rows: List[ExperimentRow] = []
    edge_counts, times = [], []
    for n, problem in tree_scaling_family(sizes=sizes, n_satellites=n_satellites,
                                          sensor_scatter=0.0, seed=seed):
        graph = build_assignment_graph(problem)
        search = ColoredSSBSearch(keep_trace=False)
        result, elapsed = timed(lambda g=graph: search.search(g.dwg))
        rows.append({
            "processing_crus": n,
            "assignment_graph_edges": graph.number_of_edges(),
            "iterations": result.iteration_count,
            "expansions": result.expansions,
            "time_s": elapsed,
            "delay": result.ssb_weight,
        })
        edge_counts.append(graph.number_of_edges())
        times.append(max(elapsed, 1e-9))
    _, exponent = fit_power_law(edge_counts, times)
    return {"rows": rows, "fitted_exponent_vs_edges": exponent}


# ---------------------------------------------------------------------- E7b
def label_engine_experiment(sizes: Sequence[int] = (10, 14, 18, 22, 26, 30),
                            n_satellites: int = 4, seed: int = 3,
                            yen_cutoff: int = 18) -> Dict[str, object]:
    """E7b: the label-dominance finisher across the scattered-sensor regime.

    Sweeps fully scattered instances (``sensor_scatter=1.0`` — the regime
    where the Figure-9 expansion never applies) with the label engine, and
    runs the Yen-enumeration finisher head-to-head up to ``yen_cutoff``
    processing CRUs (beyond that enumeration is infeasible; its column reads
    NaN).  Both finishers must agree wherever both finish.
    """
    rows: List[ExperimentRow] = []
    for n in sizes:
        problem = random_problem(n_processing=n, n_satellites=n_satellites,
                                 seed=seed, sensor_scatter=1.0)
        graph = build_assignment_graph(problem)
        label_search = ColoredSSBSearch(keep_trace=False, finisher="labels")
        label_result, label_time = timed(lambda g=graph: label_search.search(g.dwg))
        stats = label_result.label_stats
        row: ExperimentRow = {
            "processing_crus": n,
            "assignment_graph_edges": graph.number_of_edges(),
            "delay": label_result.ssb_weight,
            "label_time_s": label_time,
            "labels_created": stats.labels_created if stats else 0,
            "labels_pruned": stats.labels_bound_pruned if stats else 0,
            "yen_time_s": float("nan"),
            "speedup": float("nan"),
        }
        if n <= yen_cutoff:
            yen_search = ColoredSSBSearch(keep_trace=False, finisher="enumeration")
            yen_result, yen_time = timed(lambda g=graph: yen_search.search(g.dwg))
            if yen_result.ssb_weight != label_result.ssb_weight:
                raise RuntimeError(
                    f"finisher disagreement at n={n}: labels "
                    f"{label_result.ssb_weight} vs enumeration {yen_result.ssb_weight}")
            row["yen_time_s"] = yen_time
            row["speedup"] = yen_time / max(label_time, 1e-9)
        rows.append(row)
    return {"rows": rows, "scatter": 1.0, "yen_cutoff": yen_cutoff}


# ---------------------------------------------------------------------- E7d
def frontier_engine_experiment(sizes: Sequence[int] = (20, 30, 40, 50),
                               n_satellites: int = 4, seed: int = 3,
                               dp_cutoff: int = 35) -> Dict[str, object]:
    """E7d: the bucketed frontier engine across the scattered-sensor regime.

    Sweeps fully scattered instances with the bucketed (array-bucket) and
    the legacy linear label sweeps, plus the bound-pruned Pareto DP up to
    ``dp_cutoff`` processing CRUs — three exact engines whose optima must
    agree bit-for-bit wherever they all finish (the differential harness in
    ``tests/test_differential.py`` pins the same property as a test).
    """
    from repro.baselines.pareto_dp import pareto_dp_pruned_assignment
    from repro.core.label_search import LabelDominanceSearch

    rows: List[ExperimentRow] = []
    for n in sizes:
        problem = random_problem(n_processing=n, n_satellites=n_satellites,
                                 seed=seed, sensor_scatter=1.0)
        graph = build_assignment_graph(problem)
        bucketed = LabelDominanceSearch(frontier="bucketed")
        bucketed_result, bucketed_time = timed(
            lambda g=graph: bucketed.search(g.dwg))
        linear = LabelDominanceSearch(frontier="linear")
        linear_result, linear_time = timed(
            lambda g=graph: linear.search(g.dwg))
        if bucketed_result.ssb_weight != linear_result.ssb_weight:
            raise RuntimeError(
                f"frontier backends disagree at n={n}: "
                f"{bucketed_result.ssb_weight} vs {linear_result.ssb_weight}")
        row: ExperimentRow = {
            "processing_crus": n,
            "delay": bucketed_result.ssb_weight,
            "bucketed_time_s": bucketed_time,
            "linear_time_s": linear_time,
            "speedup": linear_time / max(bucketed_time, 1e-9),
            "bucketed_labels": bucketed_result.stats.labels_created,
            "linear_labels": linear_result.stats.labels_created,
            "pruned_dp_time_s": float("nan"),
        }
        if n <= dp_cutoff:
            (dp_assignment, _), dp_time = timed(
                lambda p=problem: pareto_dp_pruned_assignment(p))
            # compare both optima through the same code path — the sweep's
            # ssb_weight is accumulated in a different FP order than
            # Assignment.end_to_end_delay() and can differ by an ULP
            label_delay = graph.path_to_assignment(
                bucketed_result.path).end_to_end_delay()
            if dp_assignment.end_to_end_delay() != label_delay:
                raise RuntimeError(
                    f"pruned DP disagrees at n={n}: "
                    f"{dp_assignment.end_to_end_delay()} vs {label_delay}")
            row["pruned_dp_time_s"] = dp_time
        rows.append(row)
    return {"rows": rows, "scatter": 1.0, "dp_cutoff": dp_cutoff}


# ---------------------------------------------------------------------- E7c
def incremental_resolve_experiment(seeds: Sequence[int] = tuple(range(6)),
                                   n_processing: int = 20, n_satellites: int = 4,
                                   drift: float = 0.05,
                                   rounds: int = 3) -> Dict[str, object]:
    """E7c: warm-started re-solve when only profiles/costs drift.

    For each seed, solve a scattered instance cold, then re-solve ``rounds``
    structurally identical copies whose execution profiles drifted by up to
    ``drift`` (uniformly per CRU).  The warm solves reuse the previous
    optimum as the label engine's incumbent (the tree hash is unchanged, so
    the old cut is still feasible); every warm result is checked against an
    independent cold solve.  Reported per seed: cold vs mean warm solve time
    and label counts, plus how often the old cut was simply re-confirmed.
    """
    import random as _random

    from repro.distributed.incremental import IncrementalSolver, WarmStartIndex

    rows: List[ExperimentRow] = []
    total_cold_s = total_warm_s = 0.0
    for seed in seeds:
        solver = IncrementalSolver(index=WarmStartIndex())

        def fresh() -> AssignmentProblem:
            return random_problem(n_processing=n_processing,
                                  n_satellites=n_satellites, seed=seed,
                                  sensor_scatter=1.0)

        (_, cold_details), cold_time = timed(lambda: solver.solve(fresh()))
        warm_time_total = 0.0
        warm_labels = 0
        reconfirmed = 0
        rng = _random.Random(seed * 7919 + 13)
        for _ in range(rounds):
            drifted = fresh()
            for cru_id, seconds in list(drifted.profile.host_times().items()):
                drifted.profile.set_host_time(
                    cru_id, seconds * rng.uniform(1 - drift, 1 + drift))
            for cru_id, seconds in list(drifted.profile.satellite_times().items()):
                drifted.profile.set_satellite_time(
                    cru_id, seconds * rng.uniform(1 - drift, 1 + drift))
            drifted.invalidate_caches()
            (assignment, details), elapsed = timed(
                lambda p=drifted: solver.solve(p))
            if not details["warm_started"]:
                raise RuntimeError(f"warm start missed at seed {seed}")
            reference = solve(drifted, method="colored-ssb-labels")
            if abs(assignment.end_to_end_delay() - reference.objective) > 1e-9:
                raise RuntimeError(
                    f"incremental re-solve disagreement at seed {seed}: "
                    f"{assignment.end_to_end_delay()} vs {reference.objective}")
            warm_time_total += elapsed
            warm_labels += details["labels_created"]
            reconfirmed += int(details["warm_cut_still_optimal"])
        warm_mean = warm_time_total / rounds
        total_cold_s += cold_time
        total_warm_s += warm_mean
        rows.append({
            "seed": seed,
            "cold_time_s": cold_time,
            "warm_time_s": warm_mean,
            "speedup": cold_time / max(warm_mean, 1e-9),
            "cold_labels": cold_details["labels_created"],
            "warm_labels": warm_labels // rounds,
            "reconfirmed": reconfirmed,
        })
    return {
        "rows": rows,
        "drift": drift,
        "mean_speedup": total_cold_s / max(total_warm_s, 1e-9),
    }


# ----------------------------------------------------------------------- E8
def ssb_vs_sb_experiment(seeds: Sequence[int] = tuple(range(10)),
                         n_processing: int = 12, n_satellites: int = 4,
                         sensor_scatter: float = 0.3) -> Dict[str, object]:
    """E8: end-to-end delay (SSB) versus bottleneck (SB) objective comparison."""
    problems = [random_problem(n_processing=n_processing, n_satellites=n_satellites,
                               seed=seed, sensor_scatter=sensor_scatter)
                for seed in seeds]
    runner = BatchRunner()
    ssb_report = _solved(runner.solve_many(problems, method="colored-ssb"))
    sb_report = _solved(runner.solve_many(problems, method="bokhari-sb"))
    rows: List[ExperimentRow] = []
    ssb_wins = 0
    ties = 0
    for seed, ssb_item, sb_item in zip(seeds, ssb_report, sb_report):
        delay_ssb = ssb_item.objective
        delay_sb = sb_item.objective
        bottleneck_ssb = ssb_item.assignment.bottleneck_time()
        bottleneck_sb = sb_item.assignment.bottleneck_time()
        if delay_ssb < delay_sb - 1e-9:
            ssb_wins += 1
        elif abs(delay_ssb - delay_sb) <= 1e-9:
            ties += 1
        rows.append({
            "seed": seed,
            "delay_ssb_optimal": delay_ssb,
            "delay_sb_optimal": delay_sb,
            "delay_ratio_sb_over_ssb": delay_sb / delay_ssb if delay_ssb else float("nan"),
            "bottleneck_ssb_optimal": bottleneck_ssb,
            "bottleneck_sb_optimal": bottleneck_sb,
        })
    return {"rows": rows, "ssb_wins_or_ties": ssb_wins + ties, "instances": len(list(seeds))}


# ----------------------------------------------------------------------- E9
def simulation_validation_experiment(problems: Optional[Sequence[AssignmentProblem]] = None
                                     ) -> Dict[str, object]:
    """E9: analytic SSB delay versus simulated delay (barrier and eager policies)."""
    if problems is None:
        problems = [paper_example_problem(), healthcare_scenario(), snmp_scenario()]
    rows: List[ExperimentRow] = []
    max_gap = 0.0
    for problem in problems:
        result = solve(problem, method="colored-ssb")
        assignment = result.assignment
        barrier = simulate_assignment(problem, assignment, ExecutionPolicy.paper_model())
        eager = simulate_assignment(problem, assignment, ExecutionPolicy.eager())
        gap = abs(barrier.end_to_end_delay - assignment.end_to_end_delay())
        max_gap = max(max_gap, gap)
        rows.append({
            "instance": problem.name,
            "analytic_delay": assignment.end_to_end_delay(),
            "simulated_delay_barrier": barrier.end_to_end_delay,
            "simulated_delay_eager": eager.end_to_end_delay,
            "barrier_gap": gap,
            "eager_speedup": assignment.end_to_end_delay() - eager.end_to_end_delay,
        })
    return {"rows": rows, "max_barrier_gap": max_gap}


# ---------------------------------------------------------------------- E10
def optimality_experiment(seeds: Sequence[int] = tuple(range(12)),
                          n_processing: int = 9, n_satellites: int = 3,
                          sensor_scatter: float = 0.5) -> Dict[str, object]:
    """E10: the adapted SSB search agrees with brute force and the Pareto DP."""
    problems = [random_problem(n_processing=n_processing, n_satellites=n_satellites,
                               seed=seed, sensor_scatter=sensor_scatter)
                for seed in seeds]
    runner = BatchRunner()
    by_method = {method: _solved(runner.solve_many(problems, method=method))
                 for method in ("colored-ssb", "brute-force", "pareto-dp")}
    rows: List[ExperimentRow] = []
    mismatches = 0
    for i, seed in enumerate(seeds):
        ssb = by_method["colored-ssb"].results[i].objective
        brute = by_method["brute-force"].results[i].objective
        dp = by_method["pareto-dp"].results[i].objective
        agree = abs(ssb - brute) < 1e-9 and abs(ssb - dp) < 1e-9
        if not agree:
            mismatches += 1
        rows.append({
            "seed": seed,
            "colored_ssb": ssb,
            "brute_force": brute,
            "pareto_dp": dp,
            "agree": agree,
        })
    return {"rows": rows, "mismatches": mismatches}


# ---------------------------------------------------------------------- E11
def heuristics_experiment(seeds: Sequence[int] = tuple(range(8)),
                          n_processing: int = 14, n_satellites: int = 4,
                          sensor_scatter: float = 0.3) -> Dict[str, object]:
    """E11: heuristics (greedy / random / GA / B&B) against the exact optimum."""
    seeds = list(seeds)
    problems = [random_problem(n_processing=n_processing, n_satellites=n_satellites,
                               seed=seed, sensor_scatter=sensor_scatter)
                for seed in seeds]
    runner = BatchRunner()
    optimal_report = _solved(runner.solve_many(problems, method="colored-ssb"))
    greedy_report = _solved(runner.solve_many(problems, method="greedy"))
    rand_report = _solved(runner.solve_many(problems, method="random", samples=100,
                                            seeds=seeds))
    ga_report = _solved(runner.solve_many(problems, method="genetic", generations=30,
                                          population_size=24, seeds=seeds))
    bnb_report = _solved(runner.solve_many(problems, method="branch-and-bound"))
    rows: List[ExperimentRow] = []
    for i, seed in enumerate(seeds):
        optimal = optimal_report.results[i].objective
        greedy = greedy_report.results[i].objective
        rand = rand_report.results[i].objective
        ga = ga_report.results[i].objective
        bnb = bnb_report.results[i].objective
        rows.append({
            "seed": seed,
            "optimal": optimal,
            "greedy": greedy,
            "random_search": rand,
            "genetic": ga,
            "branch_and_bound": bnb,
            "greedy_gap_pct": 100.0 * (greedy / optimal - 1.0),
            "genetic_gap_pct": 100.0 * (ga / optimal - 1.0),
        })
    return {"rows": rows}


# ---------------------------------------------------------------------- E12
def _sample_dag_instance(seed: int = 0, n_tasks: int = 8, n_resources: int = 3
                         ) -> Tuple[DAGTaskGraph, ResourceGraph]:
    """A small DAG-tasks / DAG-resources instance for the extension experiment."""
    import random as _random

    rng = _random.Random(seed)
    tasks = DAGTaskGraph()
    resources = ResourceGraph()

    resource_ids = [f"r{i}" for i in range(n_resources)]
    for i, rid in enumerate(resource_ids):
        resources.add_resource(Resource(rid, speed=1.0 + i))
    for i in range(n_resources):
        for j in range(i + 1, n_resources):
            resources.connect(resource_ids[i], resource_ids[j], rate=rng.uniform(50, 200))

    for i in range(n_tasks):
        pinned = resource_ids[i % n_resources] if i < n_resources else None
        tasks.add_task(DAGTask(f"t{i}", work=rng.uniform(1, 5), pinned_to=pinned))
    for i in range(n_tasks):
        for j in range(i + 1, n_tasks):
            if rng.random() < 0.3:
                tasks.add_dependency(f"t{i}", f"t{j}", data_volume=rng.uniform(1, 50))
    # make sure the DAG is connected enough to be interesting
    for j in range(1, n_tasks):
        if not tasks.predecessors(f"t{j}"):
            tasks.add_dependency(f"t{j - 1}", f"t{j}", data_volume=rng.uniform(1, 50))
    return tasks, resources


def dag_extension_experiment(seeds: Sequence[int] = tuple(range(5)),
                             n_tasks: int = 8, n_resources: int = 3) -> Dict[str, object]:
    """E12: HEFT / GA / random against the exact optimum on small DAG instances."""
    rows: List[ExperimentRow] = []
    for seed in seeds:
        tasks, resources = _sample_dag_instance(seed=seed, n_tasks=n_tasks,
                                                n_resources=n_resources)
        exact, _ = exhaustive_dag_placement(tasks, resources)
        heft, _ = heft_placement(tasks, resources)
        ga, _ = genetic_dag_placement(tasks, resources, seed=seed)
        rand = random_dag_placement(tasks, resources, seed=seed)
        rows.append({
            "seed": seed,
            "exact_makespan": exact.makespan(),
            "heft_makespan": heft.makespan(),
            "genetic_makespan": ga.makespan(),
            "random_makespan": rand.makespan(),
            "heft_gap_pct": 100.0 * (heft.makespan() / exact.makespan() - 1.0),
        })
    return {"rows": rows}
