"""Experiment drivers, complexity instrumentation and reporting.

The benchmarks in ``benchmarks/`` are thin wrappers around the experiment
functions in :mod:`~repro.analysis.experiments`; keeping the logic here means
EXPERIMENTS.md, the CLI and the benchmark harness all report the same
numbers.
"""

from repro.analysis.complexity import (
    OperationCounter,
    fit_power_law,
    iteration_counts,
)
from repro.analysis.experiments import (
    ExperimentRow,
    figure4_experiment,
    coloring_experiment,
    labeling_experiment,
    assignment_graph_experiment,
    adapted_ssb_experiment,
    ssb_vs_sb_experiment,
    optimality_experiment,
    simulation_validation_experiment,
    heuristics_experiment,
    complexity_ssb_experiment,
    complexity_colored_experiment,
    label_engine_experiment,
    dag_extension_experiment,
)
from repro.analysis.reporting import format_table, rows_to_csv

__all__ = [
    "OperationCounter",
    "fit_power_law",
    "iteration_counts",
    "ExperimentRow",
    "figure4_experiment",
    "coloring_experiment",
    "labeling_experiment",
    "assignment_graph_experiment",
    "adapted_ssb_experiment",
    "ssb_vs_sb_experiment",
    "optimality_experiment",
    "simulation_validation_experiment",
    "heuristics_experiment",
    "complexity_ssb_experiment",
    "complexity_colored_experiment",
    "label_engine_experiment",
    "dag_extension_experiment",
    "format_table",
    "rows_to_csv",
]
