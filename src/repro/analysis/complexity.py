"""Complexity instrumentation.

The paper's complexity claims (§4.2: ``O(|V|²·|E|)``; §5.4: ``O(|E'|)``) are
checked empirically: run the algorithms on instance families of growing size,
count iterations / measure time, and fit a power law ``t ≈ a·n^k`` to the
measurements.  The fitted exponent is reported next to the predicted one; the
reproduction does not expect exact agreement (constant factors, Python
overheads) but the growth trend should match.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple


@dataclass
class OperationCounter:
    """A simple named counter bag for algorithm instrumentation."""

    counts: Dict[str, int] = field(default_factory=dict)

    def add(self, name: str, amount: int = 1) -> None:
        self.counts[name] = self.counts.get(name, 0) + amount

    def get(self, name: str) -> int:
        return self.counts.get(name, 0)

    def reset(self) -> None:
        self.counts.clear()


def fit_power_law(sizes: Sequence[float], values: Sequence[float]) -> Tuple[float, float]:
    """Least-squares fit of ``value ≈ a · size^k`` in log-log space.

    Returns ``(a, k)``.  Zero or negative measurements are clamped to a tiny
    positive value so timing noise on fast instances does not break the fit.
    """
    if len(sizes) != len(values):
        raise ValueError("sizes and values must have the same length")
    if len(sizes) < 2:
        raise ValueError("need at least two points to fit a power law")
    xs = [math.log(max(float(s), 1e-12)) for s in sizes]
    ys = [math.log(max(float(v), 1e-12)) for v in values]
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    if sxx == 0:
        raise ValueError("all sizes are identical; cannot fit an exponent")
    k = sxy / sxx
    a = math.exp(mean_y - k * mean_x)
    return a, k


def timed(fn: Callable[[], object]) -> Tuple[object, float]:
    """Run ``fn`` and return ``(result, elapsed seconds)``."""
    started = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - started


def iteration_counts(results: Iterable[object]) -> List[int]:
    """Extract ``iteration_count`` from a sequence of search results."""
    out = []
    for result in results:
        count = getattr(result, "iteration_count", None)
        if count is None:
            raise AttributeError(f"{result!r} has no iteration_count")
        out.append(int(count))
    return out
