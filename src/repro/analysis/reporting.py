"""Plain-text tables and CSV series for the experiment outputs."""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

Cell = Union[str, int, float]


def _format_cell(value: Cell, precision: int) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{precision}g}"
    return str(value)


def format_table(rows: Sequence[Mapping[str, Cell]],
                 columns: Optional[Sequence[str]] = None,
                 title: Optional[str] = None,
                 precision: int = 5) -> str:
    """Render a list of dict rows as an aligned ASCII table."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    table = [[_format_cell(row.get(col, ""), precision) for col in columns] for row in rows]
    widths = [max(len(col), *(len(r[i]) for r in table)) for i, col in enumerate(columns)]

    def line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    out: List[str] = []
    if title:
        out.append(title)
    out.append(line(list(columns)))
    out.append("-+-".join("-" * w for w in widths))
    out.extend(line(r) for r in table)
    return "\n".join(out)


def rows_to_csv(rows: Sequence[Mapping[str, Cell]],
                columns: Optional[Sequence[str]] = None) -> str:
    """Render dict rows as CSV text (no quoting of commas; keep cells simple)."""
    if not rows:
        return ""
    if columns is None:
        columns = list(rows[0].keys())
    lines = [",".join(columns)]
    for row in rows:
        lines.append(",".join(_format_cell(row.get(col, ""), precision=10) for col in columns))
    return "\n".join(lines)
