"""Command line interface.

``repro-assign`` (or ``python -m repro``) exposes the library's main entry
points without writing any Python:

* ``solve`` — solve one of the bundled scenarios (or a problem JSON file)
  with any available method and print the assignment;
* ``simulate`` — solve and then run the discrete-event simulator, printing a
  Gantt-style trace;
* ``experiment`` — run one of the DESIGN.md experiments and print its table;
* ``describe`` — print the CRU tree, the colouring and the assignment-graph
  structure of an instance;
* ``batch`` — sweep a fleet of instances through the parallel
  :class:`~repro.runtime.BatchRunner` (process pool, result cache, explicit
  seeding) and print per-instance and aggregate statistics;
* ``worker`` — run one distributed solve worker against a spool directory
  (start any number of these, on any host sharing the filesystem);
* ``serve`` — supervise a local fleet: spawn N worker subprocesses and run
  the cache janitor on a timer;
* ``submit`` — enqueue a sweep into a spool and stream the results back as
  workers publish them (``--stream`` prints each result as it arrives);
* ``gateway`` — the HTTP front door: admission control, per-client rate
  limits, request coalescing and consistent-hash sharding over N spool
  directories, with SSE progress streaming (see README "Gateway").

The two-terminal quickstart::

    terminal A$ repro-assign serve  --spool /tmp/spool --workers 2
    terminal B$ repro-assign submit --spool /tmp/spool --count 100 --stream
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from typing import Callable, Dict, List, Optional

from repro.analysis import experiments as exp
from repro.analysis.reporting import format_table
from repro.core.assignment_graph import build_assignment_graph
from repro.core.coloring import color_tree
from repro.core.solver import available_methods, solve
from repro.model.problem import AssignmentProblem
from repro.model.serialization import problem_from_json
from repro.runtime import (
    BatchRunner,
    JSONFileCache,
    LRUResultCache,
    TieredResultCache,
    default_registry,
)
from repro.simulation import ExecutionPolicy, simulate_assignment
from repro.workloads import (
    healthcare_scenario,
    paper_example_problem,
    random_problem,
    snmp_scenario,
)

_SCENARIOS: Dict[str, Callable[[], AssignmentProblem]] = {
    "paper-example": paper_example_problem,
    "healthcare": healthcare_scenario,
    "snmp": snmp_scenario,
}

_EXPERIMENTS: Dict[str, Callable[[], Dict[str, object]]] = {
    "figure4": exp.figure4_experiment,
    "coloring": exp.coloring_experiment,
    "assignment-graph": exp.assignment_graph_experiment,
    "labeling": exp.labeling_experiment,
    "adapted-ssb": exp.adapted_ssb_experiment,
    "complexity-ssb": exp.complexity_ssb_experiment,
    "complexity-colored": exp.complexity_colored_experiment,
    "label-engine": exp.label_engine_experiment,
    "frontier-engine": exp.frontier_engine_experiment,
    "incremental-resolve": exp.incremental_resolve_experiment,
    "ssb-vs-sb": exp.ssb_vs_sb_experiment,
    "simulation": exp.simulation_validation_experiment,
    "optimality": exp.optimality_experiment,
    "heuristics": exp.heuristics_experiment,
    "dag-extension": exp.dag_extension_experiment,
}


def _load_problem(args: argparse.Namespace) -> AssignmentProblem:
    if args.problem_file:
        with open(args.problem_file, "r", encoding="utf-8") as handle:
            return problem_from_json(handle.read())
    if args.scenario == "random":
        return random_problem(n_processing=args.random_size, n_satellites=args.random_satellites,
                              seed=args.seed)
    return _SCENARIOS[args.scenario]()


def _add_problem_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scenario", choices=list(_SCENARIOS) + ["random"],
                        default="paper-example",
                        help="bundled scenario to solve (default: paper-example)")
    parser.add_argument("--problem-file", help="JSON problem file (overrides --scenario)")
    parser.add_argument("--random-size", type=int, default=12,
                        help="processing CRUs for --scenario random")
    parser.add_argument("--random-satellites", type=int, default=3,
                        help="satellites for --scenario random")
    parser.add_argument("--seed", type=int, default=0, help="seed for --scenario random")


def _cmd_solve(args: argparse.Namespace) -> int:
    from repro.core.context import SolveContext

    problem = _load_problem(args)
    context = None
    if args.deadline is not None or args.anytime:
        on_incumbent = None
        if args.anytime:
            def on_incumbent(objective, payload, source):
                print(f"  incumbent: {objective:.6g} ({source})", flush=True)
        context = SolveContext(deadline_s=args.deadline,
                               on_incumbent=on_incumbent)
    result = solve(problem, method=args.method, context=context)
    print(problem.summary())
    print(result.summary())
    if result.assignment is not None:
        print(result.assignment.describe())
        if context is not None:
            note = (f" ({result.interrupted}-interrupted, best-so-far)"
                    if result.interrupted else "")
            print(f"status: {result.status}{note}")
    else:
        print(f"status: {result.status} — no feasible incumbent before the "
              f"deadline")
    if args.json:
        payload = {"method": result.method,
                   "objective": (None if result.assignment is None
                                 else result.objective),
                   "status": result.status,
                   "placement": (None if result.assignment is None
                                 else result.assignment.placement)}
        if result.incumbent_history:
            payload["incumbent_history"] = [
                [round(t, 6), obj, src]
                for t, obj, src in result.incumbent_history]
        print(json.dumps(payload, indent=2, sort_keys=True))
    return 4 if result.assignment is None else 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    problem = _load_problem(args)
    result = solve(problem, method=args.method)
    policy = ExecutionPolicy(barrier=not args.eager, dedicated_links=args.dedicated_links)
    run = simulate_assignment(problem, result.assignment, policy)
    print(problem.summary())
    print(result.summary())
    print(f"simulated end-to-end delay: {run.end_to_end_delay:.6g} "
          f"(analytic {result.assignment.end_to_end_delay():.6g})")
    print(run.trace.to_ascii())
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    problem = _load_problem(args)
    print(problem.summary())
    print()
    print("CRU tree (sensors marked with *):")
    print(problem.tree.to_ascii())
    print()
    colored = color_tree(problem)
    print("Edge colouring (conflicted edges force CRUs onto the host):")
    for parent, child in problem.tree.edges():
        color = colored.edge_color(parent, child) or "CONFLICT"
        print(f"  {parent} -> {child}: {color}")
    print(f"host-forced CRUs: {', '.join(colored.forced_host_crus())}")
    graph = build_assignment_graph(problem, colored_tree=colored)
    print(f"assignment graph: {graph.num_faces} faces, {graph.number_of_edges()} edges")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    driver = _EXPERIMENTS[args.name]
    outcome = driver()
    rows = outcome.get("rows", [])
    print(format_table(rows, title=f"experiment: {args.name}"))
    extras = {k: v for k, v in outcome.items() if k != "rows" and not isinstance(v, (list, dict))}
    for key, value in extras.items():
        print(f"{key}: {value}")
    return 0


def _cmd_methods(args: argparse.Namespace) -> int:
    if getattr(args, "verbose", False):
        rows = [spec.metadata() for spec in default_registry().specs()]
        for row in rows:
            row["aliases"] = ", ".join(row["aliases"]) or "-"
        print(format_table(rows, columns=["name", "exact", "stochastic",
                                          "anytime", "complexity", "aliases"],
                           title="registered solvers"))
        return 0
    for method in available_methods():
        print(method)
    return 0


def _batch_problems(args: argparse.Namespace) -> List[AssignmentProblem]:
    if args.problem_file:
        problems = []
        for path in args.problem_file:
            with open(path, "r", encoding="utf-8") as handle:
                problems.append(problem_from_json(handle.read()))
        return problems
    if args.scenario == "random":
        problems = []
        for i in range(args.count):
            problem = random_problem(n_processing=args.random_size,
                                     n_satellites=args.random_satellites,
                                     seed=args.seed + i,
                                     sensor_scatter=args.sensor_scatter)
            problem.name = f"{problem.name}-{args.seed + i}"
            problems.append(problem)
        return problems
    return [_SCENARIOS[args.scenario]() for _ in range(args.count)]


def _cmd_batch(args: argparse.Namespace) -> int:
    cache = None
    if not args.no_cache:
        disk = JSONFileCache(args.cache_dir) if args.cache_dir else None
        cache = TieredResultCache(memory=LRUResultCache(), disk=disk)
    try:
        problems = _batch_problems(args)
        runner = BatchRunner(workers=args.workers,
                             chunk_size=args.chunk_size,
                             task_timeout=args.timeout,
                             cache=cache,
                             base_seed=args.seed)
        report = runner.solve_many(problems, method=args.method,
                                   deadline_s=args.deadline)
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    rows = [{
        "instance": item.tag or f"#{item.index}",
        "method": item.method,
        "objective": item.objective if item.ok else "-",
        "status": item.status or "-",
        "cached": item.cached,
        "elapsed_ms": item.elapsed_s * 1e3,
        "error": (item.error or "")[:60],
    } for item in report]
    if not args.quiet:
        print(format_table(rows, title=f"batch: {len(problems)} instances, "
                                       f"method={args.method}"))
    objectives = [item.objective for item in report if item.ok]
    print(report.summary())
    if objectives:
        print(f"objective: min={min(objectives):.6g} "
              f"mean={sum(objectives) / len(objectives):.6g} "
              f"max={max(objectives):.6g}")
    if report.wall_s > 0:
        print(f"throughput: {len(problems) / report.wall_s:.1f} instances/s")
    if args.json:
        payload = {
            "method": args.method,
            "workers": report.workers,
            "wall_s": report.wall_s,
            "cache_hits": report.cache_hits,
            "solved": report.solved,
            "failed": report.failed,
            "results": [{
                "instance": item.tag,
                "key": item.key,
                "objective": item.objective,
                "cached": item.cached,
                "elapsed_s": item.elapsed_s,
                "seed": item.seed,
                "error": item.error,
                "placement": item.placement,
            } for item in report],
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
    return 1 if report.failed else 0


# ----------------------------------------------------------- distributed
def _spool_cache(args: argparse.Namespace):
    if getattr(args, "no_cache", False):
        return None
    from repro.distributed import spool_cache

    return spool_cache(args.spool)


def _cmd_worker(args: argparse.Namespace) -> int:
    import signal

    from repro.distributed import SolveWorker, WorkQueue

    queue = WorkQueue(args.spool, lease_timeout=args.lease_timeout,
                      poll_interval=args.poll_interval)
    worker = SolveWorker(queue, cache=_spool_cache(args),
                         worker_id=args.worker_id)
    # SIGTERM (e.g. submit --local-workers tearing the fleet down) becomes a
    # cooperative stop: in-flight anytime solves return their incumbent,
    # unclaimed work is released, and the metrics snapshot still gets written
    previous_handler = None
    try:
        previous_handler = signal.signal(
            signal.SIGTERM, lambda signum, frame: worker.request_stop())
    except ValueError:
        pass                        # not the main thread (e.g. tests)
    print(f"worker {worker.worker_id} pulling from {args.spool} "
          f"(lease {args.lease_timeout:g}s)", flush=True)
    try:
        handled = worker.run(max_tasks=args.max_tasks, drain=args.drain,
                             timeout=args.duration)
    except KeyboardInterrupt:
        handled = worker.processed
    finally:
        if previous_handler is not None:
            signal.signal(signal.SIGTERM, previous_handler)
        if getattr(args, "metrics_dir", None):
            base = os.path.join(args.metrics_dir,
                                f"metrics-{worker.worker_id}")
            worker.metrics.write_snapshot(base + ".json")
            worker.metrics.write_prometheus(base + ".prom")
            print(f"metrics snapshot: {base}.json", flush=True)
    print(f"worker {worker.worker_id}: {handled} task(s) processed "
          f"({worker.cache_hits} from cache)")
    return 0


def _worker_command(args: argparse.Namespace) -> List[str]:
    command = [sys.executable, "-m", "repro", "worker", "--spool", args.spool,
               "--lease-timeout", str(args.lease_timeout),
               "--poll-interval", str(args.poll_interval)]
    if getattr(args, "no_cache", False):
        command.append("--no-cache")
    if getattr(args, "drain", False):
        command.append("--drain")
    if getattr(args, "metrics_dir", None):
        command.extend(["--metrics-dir", args.metrics_dir])
    return command


def _spawn_workers(args: argparse.Namespace, count: int) -> List[subprocess.Popen]:
    env = dict(os.environ)
    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src_dir, env.get("PYTHONPATH")) if p)
    return [subprocess.Popen(_worker_command(args), env=env)
            for _ in range(count)]


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.distributed import CacheJanitor, WorkQueue
    from repro.distributed.worker import CACHE_DIR

    WorkQueue(args.spool)    # materialise the spool before workers race to it
    workers = _spawn_workers(args, args.workers)
    print(f"serving {args.spool} with {args.workers} worker(s)"
          + ("" if args.drain else " — Ctrl-C to stop"), flush=True)
    janitor = None
    if (args.cache_max_entries is not None or args.cache_max_mb is not None
            or args.cache_max_age is not None):
        janitor = CacheJanitor(
            os.path.join(args.spool, CACHE_DIR),
            max_entries=args.cache_max_entries,
            max_bytes=(int(args.cache_max_mb * 1e6)
                       if args.cache_max_mb is not None else None),
            max_age_s=args.cache_max_age)
    compact_results = None
    if (args.results_max_entries is not None
            or args.results_max_mb is not None
            or args.results_max_age is not None):
        queue = WorkQueue(args.spool)

        def compact_results():
            return queue.compact_results(
                max_count=args.results_max_entries,
                max_bytes=(int(args.results_max_mb * 1e6)
                           if args.results_max_mb is not None else None),
                max_age_s=args.results_max_age)
    next_sweep = time.monotonic() + args.janitor_interval

    sweep_queue = WorkQueue(args.spool)

    def sweep() -> None:
        if janitor is not None:
            print(janitor.collect().summary(), flush=True)
        if compact_results is not None:
            print(f"results {compact_results().summary()}", flush=True)
        reaped = sweep_queue.sweep_tmp()
        if reaped:
            print(f"spool tmp sweep: reaped {reaped} abandoned staging "
                  f"file(s)", flush=True)

    try:
        while True:
            if all(proc.poll() is not None for proc in workers):
                break               # --drain fleets exit on an empty spool
            if time.monotonic() >= next_sweep:
                # always runs: even with no cache/result caps configured the
                # spool's abandoned-staging-file sweep should happen
                sweep()
                next_sweep = time.monotonic() + args.janitor_interval
            time.sleep(0.2)
    except KeyboardInterrupt:
        pass
    finally:
        for proc in workers:
            if proc.poll() is None:
                proc.terminate()
        for proc in workers:
            proc.wait()
    sweep()
    # workers we terminated ourselves exit with a negative (signal) code;
    # that is a clean shutdown, not a failure
    return max((max(proc.returncode or 0, 0) for proc in workers),
               default=0)


def _cmd_gateway(args: argparse.Namespace) -> int:
    from repro.distributed import Gateway, GatewayConfig, WorkQueue

    shard_dirs = list(args.spool or [])
    if not shard_dirs:
        print("error: provide --spool DIR (repeatable), optionally with "
              "--shards N to expand one directory into N shards",
              file=sys.stderr)
        return 2
    if args.shards > 1:
        if len(shard_dirs) > 1:
            print("error: --shards expands a single --spool directory; "
                  "either repeat --spool or use --shards, not both",
                  file=sys.stderr)
            return 2
        base = shard_dirs[0]
        shard_dirs = [os.path.join(base, f"shard-{index}")
                      for index in range(args.shards)]
    queues = [WorkQueue(directory, lease_timeout=args.lease_timeout,
                        poll_interval=args.poll_interval)
              for directory in shard_dirs]
    gateway = Gateway(queues, GatewayConfig(
        host=args.host, port=args.port, rate_per_client=args.rate,
        burst_per_client=args.burst, max_inflight=args.max_inflight,
        default_timeout_s=args.timeout))
    workers: List[subprocess.Popen] = []
    if args.local_workers:
        # round-robin the local fleet across the shard directories so every
        # shard has at least one worker when workers >= shards
        for index in range(args.local_workers):
            shard_args = argparse.Namespace(
                spool=shard_dirs[index % len(shard_dirs)],
                lease_timeout=args.lease_timeout,
                poll_interval=args.poll_interval)
            workers.extend(_spawn_workers(shard_args, 1))
        print(f"spawned {len(workers)} local worker(s) across "
              f"{len(shard_dirs)} shard(s)", flush=True)
    try:
        gateway.serve_forever()
    finally:
        for proc in workers:
            if proc.poll() is None:
                proc.terminate()
        for proc in workers:
            proc.wait()
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.distributed import SolveService, StreamTimeout

    try:
        problems = _batch_problems(args)
        service = SolveService(args.spool, cache=_spool_cache(args),
                               base_seed=args.seed, trace=args.trace,
                               trace_sample=args.trace_sample)
        submission = service.submit(problems, method=args.method,
                                    deadline_s=args.deadline)
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.enqueue_only:
        task_ids = service.enqueue(submission)
        counts = service.queue.counts()
        print(f"enqueued {len(task_ids)} task(s) "
              f"({submission.cache_hits} already cached); "
              f"spool now: {counts}")
        return 0

    local = _spawn_workers(args, args.local_workers) if args.local_workers else []
    started = time.perf_counter()
    items = []
    failed = 0
    try:
        for item in service.stream(submission, ordered=args.ordered,
                                   window=args.window, timeout=args.timeout):
            items.append(item)
            if not item.ok:
                failed += 1
            if args.stream and not args.quiet:
                status = ("cached" if item.cached else "solved")
                if item.partial:
                    # a feasible partial is NOT an error: the deadline fired
                    # and the best incumbent came back
                    status = f"feasible/{item.details.get('interrupted')}"
                value = (f"{item.objective:.6g}" if item.ok
                         else f"ERROR {item.error[:50]}")
                print(f"[{len(items):>4}/{len(submission)}] "
                      f"{item.tag or '#' + str(item.index)}: {value} "
                      f"({status}, {item.elapsed_s * 1e3:.1f} ms)", flush=True)
    except StreamTimeout as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 3
    finally:
        for proc in local:
            if proc.poll() is None:
                proc.terminate()
        for proc in local:
            proc.wait()

    wall = time.perf_counter() - started
    solved = sum(1 for item in items if item.ok and not item.cached)
    cached = sum(1 for item in items if item.cached)
    if not args.stream and not args.quiet:
        rows = [{
            "instance": item.tag or f"#{item.index}",
            "objective": item.objective if item.ok else "-",
            "cached": item.cached,
            "elapsed_ms": item.elapsed_s * 1e3,
            "error": (item.error or "")[:60],
        } for item in sorted(items, key=lambda i: i.index)]
        print(format_table(rows, title=f"submit: {len(problems)} instances, "
                                       f"method={args.method}"))
    print(f"{len(items)} tasks in {wall:.3f}s: {solved} solved, "
          f"{cached} cached, {failed} failed")
    if wall > 0 and items:
        print(f"throughput: {len(items) / wall:.1f} instances/s")
    objectives = [item.objective for item in items if item.ok]
    if objectives:
        print(f"objective: min={min(objectives):.6g} "
              f"mean={sum(objectives) / len(objectives):.6g} "
              f"max={max(objectives):.6g}")
    return 1 if failed else 0


# ---------------------------------------------------------- observability
def _cmd_top(args: argparse.Namespace) -> int:
    from repro.observability.top import render_top, run_top, spool_snapshot

    if args.once:
        print(render_top(spool_snapshot(args.spool), width=args.width))
        return 0
    run_top(args.spool, interval=args.interval, iterations=args.iterations,
            width=args.width)
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.distributed.chaos import run_chaos
    from repro.distributed.faults import FaultPlan

    if args.show_plan:
        plan = FaultPlan.from_seed(args.plan, rate=args.rate)
        print(json.dumps(plan.to_dict(), indent=2, sort_keys=True))
        return 0
    spool = args.spool or tempfile.mkdtemp(prefix="repro-chaos-")
    report = run_chaos(spool, seed=args.plan, tasks=args.tasks,
                       workers=args.workers, rate=args.rate,
                       method=args.method, timeout_s=args.timeout)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.summary())
        print(f"  spool: {spool} (journal: chaos-journal.jsonl, "
              f"quarantine: quarantine/)")
    return 0 if report.ok else 1


def _cmd_audit(args: argparse.Namespace) -> int:
    from repro.observability.audit import build_timelines, render_audit

    timelines = build_timelines(args.spool)
    if args.json:
        print(json.dumps(timelines, indent=2, sort_keys=True))
        return 0
    print(render_audit(timelines, task_id=args.task))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.observability.tracing import (group_traces, load_spans,
                                             render_profile, render_waterfall,
                                             write_chrome_trace)

    try:
        spans = load_spans(args.spool)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not spans:
        print("no trace spans recorded in this spool "
              "(submit with --trace to record them)")
        return 1
    traces = group_traces(spans)
    if args.id:
        # accept a trace-id prefix or a task id (suffix-match, same as the
        # truncated ids repro top / audit print)
        matched = {tid: group for tid, group in traces.items()
                   if tid.startswith(args.id)}
        if not matched:
            matched = {
                tid: group for tid, group in traces.items()
                if any(args.id in str(span.get("task_id") or "")
                       for span in group)
            }
        if not matched:
            print(f"no trace matching {args.id!r} in this spool",
                  file=sys.stderr)
            return 2
        traces = matched
        spans = [span for group in traces.values() for span in group]

    if args.export:
        path = write_chrome_trace(spans, args.export)
        print(f"wrote {len(spans)} span(s) to {path} "
              f"(load in Perfetto / chrome://tracing)")

    shown = 0
    for trace_id in sorted(traces, key=lambda t: traces[t][0].get("start", 0.0)):
        if shown >= args.limit:
            print(f"... {len(traces) - shown} more trace(s) "
                  f"(raise --limit or pass an id)")
            break
        print(render_waterfall(traces[trace_id]))
        print()
        shown += 1

    if args.profile:
        profiles = 0
        for trace_id, group in traces.items():
            for span in group:
                profile = span.get("profile")
                if isinstance(profile, dict):
                    print(render_profile(
                        profile,
                        title=f"bound-effectiveness — span "
                              f"{span.get('name')} · trace {trace_id[:16]} "
                              f"({profile.get('engine')})"))
                    print()
                    profiles += 1
        if not profiles:
            print("no solver profiles recorded (profiles attach to the "
                  "solve/method spans of exact-engine solves)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-assign",
        description="Optimal assignment of a CRU tree onto a host-satellites system "
                    "(Mei, Pawar & Widya, IPPS 2007 — reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_solve = sub.add_parser("solve", help="solve a scenario and print the assignment")
    _add_problem_arguments(p_solve)
    p_solve.add_argument("--method", choices=available_methods(), default="colored-ssb")
    p_solve.add_argument("--deadline", type=float, default=None,
                         help="wall-clock budget in seconds: anytime solvers "
                              "return their best incumbent as a feasible "
                              "result when it fires")
    p_solve.add_argument("--anytime", action="store_true",
                         help="print every improving incumbent as it is found")
    p_solve.add_argument("--json", action="store_true", help="also print the placement as JSON")
    p_solve.set_defaults(func=_cmd_solve)

    p_sim = sub.add_parser("simulate", help="solve and simulate one context frame")
    _add_problem_arguments(p_sim)
    p_sim.add_argument("--method", choices=available_methods(), default="colored-ssb")
    p_sim.add_argument("--eager", action="store_true",
                       help="per-CRU precedence instead of the paper's host barrier")
    p_sim.add_argument("--dedicated-links", action="store_true",
                       help="transfers overlap with satellite computation")
    p_sim.set_defaults(func=_cmd_simulate)

    p_desc = sub.add_parser("describe", help="print tree, colouring and assignment graph")
    _add_problem_arguments(p_desc)
    p_desc.set_defaults(func=_cmd_describe)

    p_exp = sub.add_parser("experiment", help="run one of the DESIGN.md experiments")
    p_exp.add_argument("name", choices=sorted(_EXPERIMENTS))
    p_exp.set_defaults(func=_cmd_experiment)

    p_methods = sub.add_parser("methods", help="list available solver methods")
    p_methods.add_argument("--verbose", action="store_true",
                           help="print the registry's capability metadata")
    p_methods.set_defaults(func=_cmd_methods)

    p_batch = sub.add_parser(
        "batch", help="sweep many instances through the parallel batch runner")
    p_batch.add_argument("--scenario", choices=list(_SCENARIOS) + ["random"],
                         default="random",
                         help="instance family to sweep (default: random)")
    p_batch.add_argument("--problem-file", nargs="*",
                         help="JSON problem files (overrides --scenario)")
    p_batch.add_argument("--count", type=int, default=20,
                         help="number of instances to generate (default: 20)")
    p_batch.add_argument("--random-size", type=int, default=12,
                         help="processing CRUs per random instance")
    p_batch.add_argument("--random-satellites", type=int, default=3,
                         help="satellites per random instance")
    p_batch.add_argument("--sensor-scatter", type=float, default=0.3,
                         help="sensor scatter of random instances")
    p_batch.add_argument("--method", default="colored-ssb",
                         help="solver method or alias (default: colored-ssb)")
    p_batch.add_argument("--workers", type=int, default=None,
                         help="worker processes (default: REPRO_BATCH_WORKERS or serial)")
    p_batch.add_argument("--chunk-size", type=int, default=None,
                         help="tasks per worker message")
    p_batch.add_argument("--timeout", type=float, default=None,
                         help="per-task budget in seconds (cooperative "
                              "deadline for anytime solvers, hard-kill "
                              "fallback for the rest)")
    p_batch.add_argument("--deadline", type=float, default=None,
                         help="cooperative per-task deadline in seconds "
                              "(anytime solvers return feasible incumbents)")
    p_batch.add_argument("--seed", type=int, default=0,
                         help="base seed for instance generation and stochastic methods")
    p_batch.add_argument("--cache-dir",
                         help="on-disk result cache directory (warm runs skip solves)")
    p_batch.add_argument("--no-cache", action="store_true",
                         help="disable the result cache entirely")
    p_batch.add_argument("--json", help="write the full report to this JSON file")
    p_batch.add_argument("--quiet", action="store_true",
                         help="suppress the per-instance table")
    p_batch.set_defaults(func=_cmd_batch)

    # ------------------------------------------------------------ distributed
    p_worker = sub.add_parser(
        "worker", help="run one distributed solve worker against a spool")
    p_worker.add_argument("--spool", required=True,
                          help="spool directory shared by submitters and workers")
    p_worker.add_argument("--lease-timeout", type=float, default=60.0,
                          help="seconds before a crashed worker's task is requeued")
    p_worker.add_argument("--poll-interval", type=float, default=0.05,
                          help="idle sleep between claim attempts")
    p_worker.add_argument("--worker-id", help="identifier recorded in results")
    p_worker.add_argument("--max-tasks", type=int, default=None,
                          help="exit after this many tasks")
    p_worker.add_argument("--duration", type=float, default=None,
                          help="exit after this many seconds")
    p_worker.add_argument("--drain", action="store_true",
                          help="exit as soon as the spool is empty")
    p_worker.add_argument("--no-cache", action="store_true",
                          help="do not consult/feed the shared result cache")
    p_worker.add_argument("--metrics-dir",
                          help="write a metrics snapshot (JSON + Prometheus "
                               "text) into this directory on exit")
    p_worker.set_defaults(func=_cmd_worker)

    p_serve = sub.add_parser(
        "serve", help="spawn a local worker fleet plus the cache janitor")
    p_serve.add_argument("--spool", required=True,
                         help="spool directory shared by submitters and workers")
    p_serve.add_argument("--workers", type=int, default=2,
                         help="worker subprocesses to spawn (default: 2)")
    p_serve.add_argument("--lease-timeout", type=float, default=60.0)
    p_serve.add_argument("--poll-interval", type=float, default=0.05)
    p_serve.add_argument("--drain", action="store_true",
                         help="workers exit when the spool is empty (serve "
                              "returns once all have exited)")
    p_serve.add_argument("--no-cache", action="store_true",
                         help="workers do not consult/feed the shared cache")
    p_serve.add_argument("--janitor-interval", type=float, default=60.0,
                         help="seconds between cache janitor passes")
    p_serve.add_argument("--cache-max-entries", type=int, default=None,
                         help="janitor cap: entries kept in the shared cache")
    p_serve.add_argument("--cache-max-mb", type=float, default=None,
                         help="janitor cap: total cache size in MB")
    p_serve.add_argument("--cache-max-age", type=float, default=None,
                         help="janitor cap: entry age in seconds")
    p_serve.add_argument("--results-max-entries", type=int, default=None,
                         help="spool compaction cap: result files kept")
    p_serve.add_argument("--results-max-mb", type=float, default=None,
                         help="spool compaction cap: total results/ size in MB")
    p_serve.add_argument("--results-max-age", type=float, default=None,
                         help="spool compaction cap: result age in seconds")
    p_serve.add_argument("--metrics-dir",
                         help="each worker writes a metrics snapshot into "
                              "this directory on exit")
    p_serve.set_defaults(func=_cmd_serve)

    p_gateway = sub.add_parser(
        "gateway", help="HTTP front door over sharded spools (admission "
                        "control, coalescing, SSE progress)")
    p_gateway.add_argument("--spool", action="append",
                           help="spool shard directory (repeat for more "
                                "shards)")
    p_gateway.add_argument("--shards", type=int, default=0,
                           help="expand one --spool DIR into "
                                "DIR/shard-0..N-1")
    p_gateway.add_argument("--host", default="127.0.0.1")
    p_gateway.add_argument("--port", type=int, default=8080,
                           help="listen port (0 = ephemeral; the bound port "
                                "is printed on startup)")
    p_gateway.add_argument("--rate", type=float, default=None,
                           help="per-client rate limit in requests/s "
                                "(default: unlimited)")
    p_gateway.add_argument("--burst", type=float, default=10.0,
                           help="per-client burst size (token bucket depth)")
    p_gateway.add_argument("--max-inflight", type=int, default=256,
                           help="concurrent waiting solve requests before "
                                "shedding with 503")
    p_gateway.add_argument("--timeout", type=float, default=120.0,
                           help="default per-request wait budget in seconds")
    p_gateway.add_argument("--lease-timeout", type=float, default=60.0,
                           help="shard lease timeout (crashed-worker "
                                "requeue horizon)")
    p_gateway.add_argument("--poll-interval", type=float, default=0.05)
    p_gateway.add_argument("--local-workers", type=int, default=0,
                           help="spawn N worker subprocesses round-robin "
                                "across the shards")
    p_gateway.set_defaults(func=_cmd_gateway)

    p_submit = sub.add_parser(
        "submit", help="enqueue a sweep into a spool and stream the results")
    p_submit.add_argument("--spool", required=True,
                          help="spool directory shared by submitters and workers")
    p_submit.add_argument("--scenario", choices=list(_SCENARIOS) + ["random"],
                          default="random",
                          help="instance family to sweep (default: random)")
    p_submit.add_argument("--problem-file", nargs="*",
                          help="JSON problem files (overrides --scenario)")
    p_submit.add_argument("--count", type=int, default=20,
                          help="number of instances to generate (default: 20)")
    p_submit.add_argument("--random-size", type=int, default=12,
                          help="processing CRUs per random instance")
    p_submit.add_argument("--random-satellites", type=int, default=3,
                          help="satellites per random instance")
    p_submit.add_argument("--sensor-scatter", type=float, default=0.3,
                          help="sensor scatter of random instances")
    p_submit.add_argument("--method", default="colored-ssb",
                          help="solver method or alias (default: colored-ssb)")
    p_submit.add_argument("--seed", type=int, default=0,
                          help="base seed for instance generation and "
                               "stochastic methods")
    p_submit.add_argument("--deadline", type=float, default=None,
                          help="cooperative per-task deadline in seconds "
                               "(anytime solvers publish feasible incumbents)")
    p_submit.add_argument("--stream", action="store_true",
                          help="print each result the moment it arrives")
    p_submit.add_argument("--ordered", action="store_true",
                          help="yield results in submission order")
    p_submit.add_argument("--window", type=int, default=None,
                          help="backpressure: max tasks in flight at once")
    p_submit.add_argument("--timeout", type=float, default=None,
                          help="overall deadline in seconds")
    p_submit.add_argument("--local-workers", type=int, default=0,
                          help="spawn this many worker subprocesses for the "
                               "duration of the sweep")
    p_submit.add_argument("--lease-timeout", type=float, default=60.0)
    p_submit.add_argument("--poll-interval", type=float, default=0.05)
    p_submit.add_argument("--enqueue-only", action="store_true",
                          help="spool the tasks and exit without waiting")
    p_submit.add_argument("--no-cache", action="store_true",
                          help="disable the shared result cache")
    p_submit.add_argument("--quiet", action="store_true",
                          help="suppress per-instance output")
    p_submit.add_argument("--trace", action="store_true",
                          help="record distributed trace spans (submit/claim/"
                               "solve/ack) into the spool event log")
    p_submit.add_argument("--trace-sample", type=float, default=1.0,
                          help="head-sampling rate for --trace, deterministic "
                               "per problem hash (default: 1.0 = everything)")
    p_submit.add_argument("--metrics-dir",
                          help="each local worker writes a metrics snapshot "
                               "into this directory on exit")
    p_submit.set_defaults(func=_cmd_submit, drain=False)

    # ---------------------------------------------------------- observability
    p_top = sub.add_parser(
        "top", help="live terminal dashboard over a spool directory")
    p_top.add_argument("--spool", required=True,
                       help="spool directory to observe")
    p_top.add_argument("--interval", type=float, default=1.0,
                       help="seconds between redraws (default: 1)")
    p_top.add_argument("--iterations", type=int, default=None,
                       help="stop after this many frames (default: forever)")
    p_top.add_argument("--once", action="store_true",
                       help="print a single frame without clearing the screen")
    p_top.add_argument("--width", type=int, default=100,
                       help="maximum rendered line width (default: 100)")
    p_top.set_defaults(func=_cmd_top)

    p_chaos = sub.add_parser(
        "chaos",
        help="run a seeded fault-injection plan against a live worker fleet "
             "and verify the exactly-once invariants")
    p_chaos.add_argument("--spool", default=None,
                         help="spool directory to abuse (default: a fresh "
                              "temporary directory, left in place for "
                              "forensics)")
    p_chaos.add_argument("--plan", type=int, default=0, metavar="SEED",
                         help="fault-plan seed; the same seed replays the "
                              "same fault schedule (default: 0)")
    p_chaos.add_argument("--workers", type=int, default=2,
                         help="worker threads to run (default: 2)")
    p_chaos.add_argument("--tasks", type=int, default=200,
                         help="tasks to submit (default: 200)")
    p_chaos.add_argument("--rate", type=float, default=0.05,
                         help="base per-call fault probability (default: "
                              "0.05)")
    p_chaos.add_argument("--method", default="greedy",
                         help="solver method for the chaos tasks (default: "
                              "greedy — fast, so the run stresses the spool "
                              "rather than the solver)")
    p_chaos.add_argument("--timeout", type=float, default=120.0,
                         help="overall budget in seconds before the run is "
                              "declared wedged (default: 120)")
    p_chaos.add_argument("--show-plan", action="store_true",
                         help="print the fault plan as JSON and exit")
    p_chaos.add_argument("--json", action="store_true",
                         help="print the report as JSON")
    p_chaos.set_defaults(func=_cmd_chaos)

    p_audit = sub.add_parser(
        "audit", help="reconstruct per-task solve timelines from a spool")
    p_audit.add_argument("--spool", required=True,
                         help="spool directory to audit")
    p_audit.add_argument("--task", default=None,
                         help="print the full event timeline of one task id")
    p_audit.add_argument("--json", action="store_true",
                         help="dump raw timelines as JSON instead of a table")
    p_audit.set_defaults(func=_cmd_audit)

    p_trace = sub.add_parser(
        "trace", help="inspect distributed trace spans recorded in a spool")
    p_trace.add_argument("--spool", required=True,
                         help="spool directory whose event log holds the spans")
    p_trace.add_argument("id", nargs="?", default=None,
                         help="trace-id prefix or task id to focus on "
                              "(default: every trace)")
    p_trace.add_argument("--export", default=None, metavar="FILE",
                         help="write the selected spans as Chrome trace-event "
                              "JSON (Perfetto / chrome://tracing loadable)")
    p_trace.add_argument("--profile", action="store_true",
                         help="print the bound-effectiveness pruning table "
                              "for each span that carries a solver profile")
    p_trace.add_argument("--limit", type=int, default=10,
                         help="max waterfalls to print without an id "
                              "(default: 10)")
    p_trace.set_defaults(func=_cmd_trace)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
