"""Command line interface.

``repro-assign`` (or ``python -m repro``) exposes the library's main entry
points without writing any Python:

* ``solve`` — solve one of the bundled scenarios (or a problem JSON file)
  with any available method and print the assignment;
* ``simulate`` — solve and then run the discrete-event simulator, printing a
  Gantt-style trace;
* ``experiment`` — run one of the DESIGN.md experiments and print its table;
* ``describe`` — print the CRU tree, the colouring and the assignment-graph
  structure of an instance.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Dict, List, Optional

from repro.analysis import experiments as exp
from repro.analysis.reporting import format_table
from repro.core.assignment_graph import build_assignment_graph
from repro.core.coloring import color_tree
from repro.core.solver import available_methods, solve
from repro.model.problem import AssignmentProblem
from repro.model.serialization import problem_from_json
from repro.simulation import ExecutionPolicy, simulate_assignment
from repro.workloads import (
    healthcare_scenario,
    paper_example_problem,
    random_problem,
    snmp_scenario,
)

_SCENARIOS: Dict[str, Callable[[], AssignmentProblem]] = {
    "paper-example": paper_example_problem,
    "healthcare": healthcare_scenario,
    "snmp": snmp_scenario,
}

_EXPERIMENTS: Dict[str, Callable[[], Dict[str, object]]] = {
    "figure4": exp.figure4_experiment,
    "coloring": exp.coloring_experiment,
    "assignment-graph": exp.assignment_graph_experiment,
    "labeling": exp.labeling_experiment,
    "adapted-ssb": exp.adapted_ssb_experiment,
    "complexity-ssb": exp.complexity_ssb_experiment,
    "complexity-colored": exp.complexity_colored_experiment,
    "ssb-vs-sb": exp.ssb_vs_sb_experiment,
    "simulation": exp.simulation_validation_experiment,
    "optimality": exp.optimality_experiment,
    "heuristics": exp.heuristics_experiment,
    "dag-extension": exp.dag_extension_experiment,
}


def _load_problem(args: argparse.Namespace) -> AssignmentProblem:
    if args.problem_file:
        with open(args.problem_file, "r", encoding="utf-8") as handle:
            return problem_from_json(handle.read())
    if args.scenario == "random":
        return random_problem(n_processing=args.random_size, n_satellites=args.random_satellites,
                              seed=args.seed)
    return _SCENARIOS[args.scenario]()


def _add_problem_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scenario", choices=list(_SCENARIOS) + ["random"],
                        default="paper-example",
                        help="bundled scenario to solve (default: paper-example)")
    parser.add_argument("--problem-file", help="JSON problem file (overrides --scenario)")
    parser.add_argument("--random-size", type=int, default=12,
                        help="processing CRUs for --scenario random")
    parser.add_argument("--random-satellites", type=int, default=3,
                        help="satellites for --scenario random")
    parser.add_argument("--seed", type=int, default=0, help="seed for --scenario random")


def _cmd_solve(args: argparse.Namespace) -> int:
    problem = _load_problem(args)
    result = solve(problem, method=args.method)
    print(problem.summary())
    print(result.summary())
    print(result.assignment.describe())
    if args.json:
        print(json.dumps({"method": result.method, "objective": result.objective,
                          "placement": result.assignment.placement}, indent=2, sort_keys=True))
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    problem = _load_problem(args)
    result = solve(problem, method=args.method)
    policy = ExecutionPolicy(barrier=not args.eager, dedicated_links=args.dedicated_links)
    run = simulate_assignment(problem, result.assignment, policy)
    print(problem.summary())
    print(result.summary())
    print(f"simulated end-to-end delay: {run.end_to_end_delay:.6g} "
          f"(analytic {result.assignment.end_to_end_delay():.6g})")
    print(run.trace.to_ascii())
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    problem = _load_problem(args)
    print(problem.summary())
    print()
    print("CRU tree (sensors marked with *):")
    print(problem.tree.to_ascii())
    print()
    colored = color_tree(problem)
    print("Edge colouring (conflicted edges force CRUs onto the host):")
    for parent, child in problem.tree.edges():
        color = colored.edge_color(parent, child) or "CONFLICT"
        print(f"  {parent} -> {child}: {color}")
    print(f"host-forced CRUs: {', '.join(colored.forced_host_crus())}")
    graph = build_assignment_graph(problem, colored_tree=colored)
    print(f"assignment graph: {graph.num_faces} faces, {graph.number_of_edges()} edges")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    driver = _EXPERIMENTS[args.name]
    outcome = driver()
    rows = outcome.get("rows", [])
    print(format_table(rows, title=f"experiment: {args.name}"))
    extras = {k: v for k, v in outcome.items() if k != "rows" and not isinstance(v, (list, dict))}
    for key, value in extras.items():
        print(f"{key}: {value}")
    return 0


def _cmd_methods(_args: argparse.Namespace) -> int:
    for method in available_methods():
        print(method)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-assign",
        description="Optimal assignment of a CRU tree onto a host-satellites system "
                    "(Mei, Pawar & Widya, IPPS 2007 — reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_solve = sub.add_parser("solve", help="solve a scenario and print the assignment")
    _add_problem_arguments(p_solve)
    p_solve.add_argument("--method", choices=available_methods(), default="colored-ssb")
    p_solve.add_argument("--json", action="store_true", help="also print the placement as JSON")
    p_solve.set_defaults(func=_cmd_solve)

    p_sim = sub.add_parser("simulate", help="solve and simulate one context frame")
    _add_problem_arguments(p_sim)
    p_sim.add_argument("--method", choices=available_methods(), default="colored-ssb")
    p_sim.add_argument("--eager", action="store_true",
                       help="per-CRU precedence instead of the paper's host barrier")
    p_sim.add_argument("--dedicated-links", action="store_true",
                       help="transfers overlap with satellite computation")
    p_sim.set_defaults(func=_cmd_simulate)

    p_desc = sub.add_parser("describe", help="print tree, colouring and assignment graph")
    _add_problem_arguments(p_desc)
    p_desc.set_defaults(func=_cmd_describe)

    p_exp = sub.add_parser("experiment", help="run one of the DESIGN.md experiments")
    p_exp.add_argument("name", choices=sorted(_EXPERIMENTS))
    p_exp.set_defaults(func=_cmd_experiment)

    p_methods = sub.add_parser("methods", help="list available solver methods")
    p_methods.set_defaults(func=_cmd_methods)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
