"""A small weighted directed multigraph.

The assignment graph of the paper is a *multigraph*: two faces of the closed
CRU tree can be separated by several tree edges (e.g. a CRU receiving several
sensor feeds), each of which becomes its own assignment-graph edge with its
own pair of weights and its own colour.  Hash-based adjacency with explicit
edge keys keeps every parallel edge addressable, which the SSB algorithm needs
when it deletes individual edges between iterations.

Nodes can be any hashable object.  Edge attributes are free-form keyword
arguments stored on the :class:`Edge` record; the core package stores the
``sigma`` / ``beta`` weights and the ``color`` there.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Iterable, Iterator, List, Optional, Tuple

Node = Hashable


@dataclass(frozen=True)
class Edge:
    """A single directed edge of a :class:`DiGraph`.

    Attributes
    ----------
    key:
        Graph-unique integer identifier.  Parallel edges differ by key.
    tail, head:
        Source and target nodes.
    data:
        Arbitrary edge attributes (weights, colours, provenance).
    """

    key: int
    tail: Node
    head: Node
    data: Dict[str, Any] = field(compare=False, default_factory=dict)

    def __getitem__(self, name: str) -> Any:
        return self.data[name]

    def get(self, name: str, default: Any = None) -> Any:
        return self.data.get(name, default)

    def endpoints(self) -> Tuple[Node, Node]:
        return (self.tail, self.head)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Edge({self.tail!r}->{self.head!r}, key={self.key}, {self.data})"


class DiGraph:
    """Weighted directed multigraph with O(1) edge removal by key.

    The structure intentionally mirrors the handful of operations the
    assignment algorithms need: add/remove nodes and edges, iterate
    out-edges, look edges up by key, and copy the graph (the SSB algorithm
    works on a shrinking copy of the original graph).
    """

    def __init__(self) -> None:
        self._succ: Dict[Node, Dict[int, Edge]] = {}
        self._pred: Dict[Node, Dict[int, Edge]] = {}
        self._edges: Dict[int, Edge] = {}
        self._key_counter = itertools.count()
        self._version = 0

    @property
    def version(self) -> int:
        """Monotonic structural-mutation counter.

        Incremented by every node/edge addition or removal, so derived
        structures (topological orders, reachability sets, potentials — see
        :class:`repro.graphs.dag.DagIndex`) can cache their results and
        invalidate only when the graph actually changed.
        """
        return self._version

    def bump_version(self) -> int:
        """Invalidate derived caches after in-place edge-*attribute* edits.

        Structural mutations bump the counter automatically, but rewriting
        ``edge.data`` in place (e.g. re-weighting a reused assignment-graph
        skeleton with fresh profiles) is invisible to the adjacency tracking
        — callers must bump explicitly so :class:`repro.graphs.dag.DagIndex`
        drops its cached potentials and shortest paths.
        """
        self._version += 1
        return self._version

    # ------------------------------------------------------------------ nodes
    def add_node(self, node: Node) -> Node:
        """Add ``node`` if not already present and return it."""
        if node not in self._succ:
            self._succ[node] = {}
            self._pred[node] = {}
            self._version += 1
        return node

    def remove_node(self, node: Node) -> None:
        """Remove ``node`` and every incident edge."""
        if node not in self._succ:
            raise KeyError(f"node {node!r} not in graph")
        for edge in list(self._succ[node].values()):
            self.remove_edge(edge.key)
        for edge in list(self._pred[node].values()):
            self.remove_edge(edge.key)
        del self._succ[node]
        del self._pred[node]
        self._version += 1

    def has_node(self, node: Node) -> bool:
        return node in self._succ

    def nodes(self) -> List[Node]:
        return list(self._succ)

    def number_of_nodes(self) -> int:
        return len(self._succ)

    # ------------------------------------------------------------------ edges
    def add_edge(self, tail: Node, head: Node, **data: Any) -> Edge:
        """Add a directed edge ``tail -> head`` carrying ``data``.

        Parallel edges are allowed; each call creates a new edge with a fresh
        key.
        """
        self.add_node(tail)
        self.add_node(head)
        key = next(self._key_counter)
        edge = Edge(key=key, tail=tail, head=head, data=dict(data))
        self._edges[key] = edge
        self._succ[tail][key] = edge
        self._pred[head][key] = edge
        self._version += 1
        return edge

    def remove_edge(self, key: int) -> Edge:
        """Remove and return the edge identified by ``key``."""
        try:
            edge = self._edges.pop(key)
        except KeyError:
            raise KeyError(f"edge key {key} not in graph") from None
        del self._succ[edge.tail][key]
        del self._pred[edge.head][key]
        self._version += 1
        return edge

    def remove_edges(self, keys: Iterable[int]) -> List[Edge]:
        """Remove several edges by key, returning the removed edges."""
        return [self.remove_edge(key) for key in list(keys)]

    def has_edge(self, key: int) -> bool:
        return key in self._edges

    def edge(self, key: int) -> Edge:
        return self._edges[key]

    def edges(self) -> List[Edge]:
        return list(self._edges.values())

    def number_of_edges(self) -> int:
        return len(self._edges)

    def edges_between(self, tail: Node, head: Node) -> List[Edge]:
        """All parallel edges from ``tail`` to ``head``."""
        if tail not in self._succ:
            return []
        return [e for e in self._succ[tail].values() if e.head == head]

    # -------------------------------------------------------------- adjacency
    def out_edges(self, node: Node) -> List[Edge]:
        if node not in self._succ:
            raise KeyError(f"node {node!r} not in graph")
        return list(self._succ[node].values())

    def in_edges(self, node: Node) -> List[Edge]:
        if node not in self._pred:
            raise KeyError(f"node {node!r} not in graph")
        return list(self._pred[node].values())

    def successors(self, node: Node) -> List[Node]:
        return [e.head for e in self.out_edges(node)]

    def predecessors(self, node: Node) -> List[Node]:
        return [e.tail for e in self.in_edges(node)]

    def out_degree(self, node: Node) -> int:
        return len(self._succ[node])

    def in_degree(self, node: Node) -> int:
        return len(self._pred[node])

    # ------------------------------------------------------------------ misc
    def copy(self) -> "DiGraph":
        """Deep-ish copy: nodes and edges are new records, attribute dicts are
        copied one level deep, edge keys are preserved."""
        g = DiGraph()
        for node in self._succ:
            g.add_node(node)
        for edge in self._edges.values():
            new_edge = Edge(key=edge.key, tail=edge.tail, head=edge.head, data=dict(edge.data))
            g._edges[edge.key] = new_edge
            g._succ[edge.tail][edge.key] = new_edge
            g._pred[edge.head][edge.key] = new_edge
        # keep generating keys above any existing key
        max_key = max(self._edges, default=-1)
        g._key_counter = itertools.count(max_key + 1)
        return g

    def subgraph(self, nodes: Iterable[Node]) -> "DiGraph":
        """Subgraph induced by ``nodes`` (edges keep their keys)."""
        keep = set(nodes)
        g = DiGraph()
        for node in keep:
            if node in self._succ:
                g.add_node(node)
        for edge in self._edges.values():
            if edge.tail in keep and edge.head in keep:
                new_edge = Edge(key=edge.key, tail=edge.tail, head=edge.head, data=dict(edge.data))
                g._edges[edge.key] = new_edge
                g._succ[edge.tail][edge.key] = new_edge
                g._pred[edge.head][edge.key] = new_edge
        max_key = max(self._edges, default=-1)
        g._key_counter = itertools.count(max_key + 1)
        return g

    def __contains__(self, node: Node) -> bool:
        return node in self._succ

    def __iter__(self) -> Iterator[Node]:
        return iter(self._succ)

    def __len__(self) -> int:
        return len(self._succ)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"DiGraph(|V|={self.number_of_nodes()}, |E|={self.number_of_edges()})"
        )
