"""Exhaustive s-t path enumeration for DAGs.

The coloured assignment graph is a DAG whose S→T paths are exactly the
feasible partitions, so "enumerate the remaining candidates" (the fallback of
the adapted SSB search, and several experiments) does not need the general
k-shortest-path machinery: a depth-first walk restricted to nodes that can
still reach the target enumerates every path with O(length) work per path and
no graph copies.
"""

from __future__ import annotations

from typing import Iterator, List, Set, Tuple

from repro.graphs.connectivity import reachable_from
from repro.graphs.digraph import DiGraph, Edge, Node
from repro.graphs.paths import Path


def iter_st_paths_dag(graph: DiGraph, source: Node, target: Node) -> Iterator[Path]:
    """Yield every ``source -> target`` path of a DAG (arbitrary order).

    The caller is responsible for the graph being acyclic; on a cyclic graph
    the walk would not terminate, so a defensive depth guard raises instead.
    """
    if not graph.has_node(source) or not graph.has_node(target):
        return
    # restrict the walk to nodes that can still reach the target
    reversed_graph = DiGraph()
    for node in graph.nodes():
        reversed_graph.add_node(node)
    for edge in graph.edges():
        reversed_graph.add_edge(edge.head, edge.tail)
    useful = reachable_from(reversed_graph, target)
    if source not in useful:
        return

    max_depth = graph.number_of_nodes() + 1
    stack: List[Tuple[Node, Tuple[Edge, ...]]] = [(source, ())]
    while stack:
        node, edges_so_far = stack.pop()
        if node == target:
            if edges_so_far:
                yield Path.from_edges(edges_so_far)
            else:
                yield Path.empty(source)
            continue
        if len(edges_so_far) >= max_depth:
            raise ValueError("path longer than the node count; graph is not a DAG")
        for edge in graph.out_edges(node):
            if edge.head in useful:
                stack.append((edge.head, edges_so_far + (edge,)))


def count_st_paths_dag(graph: DiGraph, source: Node, target: Node) -> int:
    """Number of ``source -> target`` paths of a DAG (dynamic programming).

    Parallel edges count separately.  Runs in O(|V| + |E|) — used by tests to
    cross-check the enumerator and the cut/path bijection without listing
    every path.
    """
    from repro.graphs.connectivity import topological_order

    if not graph.has_node(source) or not graph.has_node(target):
        return 0
    counts = {node: 0 for node in graph.nodes()}
    counts[source] = 1
    for node in topological_order(graph):
        if counts[node] == 0:
            continue
        for edge in graph.out_edges(node):
            counts[edge.head] += counts[node]
    return counts[target]
