"""DAG-specific search primitives: single-pass shortest paths, potentials and
a mutation-aware structure cache.

The coloured assignment graph (paper §5.2) is a DAG whose edges strictly
advance the face index, so everything the SSB machinery needs from it —
shortest σ paths, min-σ "potentials" to the target, forward/backward
reachability for the expansion step — can be computed in a single topological
sweep instead of a heap-based Dijkstra or a reversed graph copy.

:class:`DagIndex` memoises those derived structures against the graph's
:attr:`~repro.graphs.digraph.DiGraph.version` counter: the SSB elimination
loop removes a few edges per iteration and then asks the same questions
again, so every query after an unchanged iteration is a dictionary lookup.
The label-dominance engine (:mod:`repro.core.label_search`) leans on the
same index for its topological sweep and its bound-pruning potentials.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.graphs.connectivity import reachable_from, reachable_to, topological_order
from repro.graphs.digraph import DiGraph, Edge, Node
from repro.graphs.dijkstra import WeightSpec, weight_fn as _weight_fn
from repro.graphs.paths import Path


class NotADagError(ValueError):
    """Raised when a DAG-only routine receives a graph with a directed cycle."""


def dag_shortest_path(graph: DiGraph, source: Node, target: Node,
                      weight: WeightSpec = "weight",
                      order: Optional[List[Node]] = None) -> Optional[Path]:
    """Shortest ``source -> target`` path of a DAG in one topological pass.

    Unlike Dijkstra this tolerates arbitrary (also negative) weights; it
    raises :class:`NotADagError` on cyclic graphs.  ``order`` may carry a
    precomputed topological order to avoid recomputing it.
    """
    if not graph.has_node(source) or not graph.has_node(target):
        return None
    wf = _weight_fn(weight)
    if order is None:
        order = dag_topological_order(graph)

    dist: Dict[Node, float] = {source: 0.0}
    pred: Dict[Node, Edge] = {}
    for node in order:
        if node not in dist:
            continue
        if node == target:
            break
        d = dist[node]
        for edge in graph.out_edges(node):
            nd = d + wf(edge)
            head = edge.head
            if head not in dist or nd < dist[head]:
                dist[head] = nd
                pred[head] = edge
    if target not in dist:
        return None
    if source == target:
        return Path.empty(source)
    edges: List[Edge] = []
    node = target
    while node != source:
        edge = pred[node]
        edges.append(edge)
        node = edge.tail
    edges.reverse()
    return Path.from_edges(edges)


def min_weight_to_target(graph: DiGraph, target: Node,
                         weight: WeightSpec = "weight",
                         order: Optional[List[Node]] = None) -> Dict[Node, float]:
    """Minimum total weight from every node to ``target`` (backward DAG DP).

    Nodes that cannot reach ``target`` are absent from the result.  The SSB
    label engine uses these values as an admissible "potential": any partial
    path at node ``v`` needs at least ``pot[v]`` additional σ weight to
    complete, which turns the incumbent SSB candidate into a pruning bound.
    """
    if not graph.has_node(target):
        raise KeyError(f"target {target!r} not in graph")
    wf = _weight_fn(weight)
    if order is None:
        order = dag_topological_order(graph)
    pot: Dict[Node, float] = {target: 0.0}
    for node in reversed(order):
        if node == target:
            continue
        best = None
        for edge in graph.out_edges(node):
            tail = pot.get(edge.head)
            if tail is None:
                continue
            value = wf(edge) + tail
            if best is None or value < best:
                best = value
        if best is not None:
            pot[node] = best
    return pot


def dag_topological_order(graph: DiGraph) -> List[Node]:
    """Topological order of ``graph``; raises :class:`NotADagError` on cycles."""
    try:
        return topological_order(graph)
    except ValueError as exc:
        raise NotADagError(str(exc)) from exc


class DagIndex:
    """Cached structural queries over a (possibly mutating) directed graph.

    The index holds the topological order, forward/backward reachability
    sets and min-weight potentials of a graph and recomputes them lazily
    whenever the graph's :attr:`~repro.graphs.digraph.DiGraph.version`
    counter has moved — i.e. exactly when an edge or node was added or
    removed, never merely because time passed.  All queries are therefore
    safe to issue once per SSB iteration at amortised dictionary-lookup cost.
    """

    def __init__(self, graph: DiGraph) -> None:
        self.graph = graph
        self._version = -1
        self._order: Optional[List[Node]] = None
        self._acyclic: Optional[bool] = None
        self._forward: Dict[Node, Set[Node]] = {}
        self._backward: Dict[Node, Set[Node]] = {}
        self._potentials: Dict[Tuple[Node, str], Dict[Node, float]] = {}

    # ------------------------------------------------------------- lifecycle
    def _sync(self) -> None:
        if self._version != self.graph.version:
            self._version = self.graph.version
            self._order = None
            self._acyclic = None
            self._forward.clear()
            self._backward.clear()
            self._potentials.clear()

    # --------------------------------------------------------------- queries
    def is_dag(self) -> bool:
        self._sync()
        if self._acyclic is None:
            try:
                self._order = topological_order(self.graph)
                self._acyclic = True
            except ValueError:
                self._acyclic = False
        return self._acyclic

    def order(self) -> List[Node]:
        """Topological order (cached); raises :class:`NotADagError` on cycles."""
        if not self.is_dag():
            raise NotADagError("graph has a directed cycle; no topological order exists")
        assert self._order is not None
        return self._order

    def reachable_from(self, node: Node) -> Set[Node]:
        """Forward reachability set of ``node`` (cached per graph version)."""
        self._sync()
        cached = self._forward.get(node)
        if cached is None:
            cached = self._forward[node] = reachable_from(self.graph, node)
        return cached

    def reachable_to(self, node: Node) -> Set[Node]:
        """Backward reachability set of ``node`` (cached per graph version)."""
        self._sync()
        cached = self._backward.get(node)
        if cached is None:
            cached = self._backward[node] = reachable_to(self.graph, node)
        return cached

    def potentials_to(self, target: Node, weight: WeightSpec = "weight"
                      ) -> Dict[Node, float]:
        """Min-weight-to-target map (cached per graph version for attribute
        weights; callables are recomputed every call)."""
        self._sync()
        if callable(weight):
            return min_weight_to_target(self.graph, target, weight, order=self.order())
        key = (target, weight)
        cached = self._potentials.get(key)
        if cached is None:
            cached = min_weight_to_target(self.graph, target, weight, order=self.order())
            self._potentials[key] = cached
        return cached

    def shortest_path(self, source: Node, target: Node,
                      weight: WeightSpec = "weight") -> Optional[Path]:
        """Single-pass DAG shortest path reusing the cached topological order."""
        return dag_shortest_path(self.graph, source, target, weight,
                                 order=self.order())
