"""Dijkstra shortest paths.

The SSB algorithm (paper §4.2) runs one min-S shortest-path search per
iteration; the paper cites the classical ``O(|V|^2)`` bound but any
non-negative-weight shortest-path routine is admissible.  We use a binary-heap
Dijkstra with lazy deletion, which is both simpler and faster for the sparse
assignment graphs produced by CRU trees.

Weights are taken from an edge attribute (default ``"weight"``) or from a
caller-supplied callable, so the same routine serves the σ-weighted searches
of the SSB/SB algorithms and plain weighted graphs in tests.
"""

from __future__ import annotations

import heapq
import itertools
from typing import AbstractSet, Callable, Dict, Hashable, Optional, Tuple, Union

from repro.graphs.digraph import DiGraph, Edge, Node
from repro.graphs.paths import Path

WeightSpec = Union[str, Callable[[Edge], float]]


def weight_fn(weight: WeightSpec) -> Callable[[Edge], float]:
    """Normalise a weight spec (attribute name or callable) into a callable.

    Shared by the weighted-graph routines (Dijkstra, Bellman-Ford, Yen, the
    DAG sweeps) so weight resolution cannot diverge between them.
    """
    if callable(weight):
        return weight
    name = weight

    def fn(edge: Edge) -> float:
        return float(edge.data[name])

    return fn


def dijkstra(
    graph: DiGraph,
    source: Node,
    weight: WeightSpec = "weight",
    target: Optional[Node] = None,
    banned_edge_keys: Optional[AbstractSet[int]] = None,
    banned_nodes: Optional[AbstractSet[Node]] = None,
) -> Tuple[Dict[Node, float], Dict[Node, Optional[Edge]]]:
    """Single-source shortest path distances and predecessor edges.

    Parameters
    ----------
    graph:
        The graph to search.
    source:
        Start node.
    weight:
        Edge attribute name or callable returning a non-negative weight.
    target:
        Optional early-exit target.
    banned_edge_keys, banned_nodes:
        Edges (by key) and nodes skipped during relaxation, as if deleted.
        Yen's spur searches restrict the graph this way on every candidate;
        filtering here avoids copying the whole graph per spur.

    Returns
    -------
    (dist, pred):
        ``dist[v]`` is the shortest distance from ``source`` to every settled
        node ``v``; ``pred[v]`` is the edge used to reach ``v`` on a shortest
        path (``None`` for the source).  Unreachable nodes are absent.

    Raises
    ------
    ValueError
        If a negative edge weight is encountered.
    KeyError
        If ``source`` is not a node of ``graph``.
    """
    if not graph.has_node(source):
        raise KeyError(f"source {source!r} not in graph")
    wf = weight_fn(weight)
    if banned_nodes and source in banned_nodes:
        return {}, {}

    dist: Dict[Node, float] = {}
    pred: Dict[Node, Optional[Edge]] = {}
    counter = itertools.count()
    heap: list = [(0.0, next(counter), source, None)]

    while heap:
        d, _, node, via = heapq.heappop(heap)
        if node in dist:
            continue
        dist[node] = d
        pred[node] = via
        if target is not None and node == target:
            break
        for edge in graph.out_edges(node):
            if banned_edge_keys and edge.key in banned_edge_keys:
                continue
            w = wf(edge)
            if w < 0:
                raise ValueError(
                    f"Dijkstra requires non-negative weights, got {w} on {edge!r}"
                )
            head = edge.head
            if head not in dist and not (banned_nodes and head in banned_nodes):
                heapq.heappush(heap, (d + w, next(counter), head, edge))
    return dist, pred


def reconstruct_path(
    source: Node,
    target: Node,
    pred: Dict[Node, Optional[Edge]],
) -> Path:
    """Rebuild the path from a predecessor map produced by :func:`dijkstra`."""
    if target not in pred:
        raise KeyError(f"target {target!r} unreachable")
    edges = []
    node = target
    while node != source:
        edge = pred[node]
        if edge is None:
            raise KeyError(f"no predecessor chain from {target!r} back to {source!r}")
        edges.append(edge)
        node = edge.tail
    edges.reverse()
    if not edges:
        return Path.empty(source)
    return Path.from_edges(edges)


def shortest_path(
    graph: DiGraph,
    source: Node,
    target: Node,
    weight: WeightSpec = "weight",
    banned_edge_keys: Optional[AbstractSet[int]] = None,
    banned_nodes: Optional[AbstractSet[Node]] = None,
) -> Optional[Path]:
    """Shortest ``source -> target`` path, or ``None`` when unreachable."""
    dist, pred = dijkstra(graph, source, weight=weight, target=target,
                          banned_edge_keys=banned_edge_keys,
                          banned_nodes=banned_nodes)
    if target not in dist:
        return None
    return reconstruct_path(source, target, pred)


def shortest_path_length(
    graph: DiGraph,
    source: Node,
    target: Node,
    weight: WeightSpec = "weight",
) -> Optional[float]:
    """Length of the shortest ``source -> target`` path, or ``None``."""
    dist, _ = dijkstra(graph, source, weight=weight, target=target)
    return dist.get(target)
