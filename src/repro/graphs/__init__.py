"""Graph substrate used by the assignment algorithms.

The assignment algorithms of the paper operate on small-to-medium directed
(multi)graphs: the doubly weighted assignment graph, the CRU tree and the
star-shaped resource network.  The paper relies on standard graph machinery
(Dijkstra shortest paths, connectivity checks, planar-dual construction on a
tree).  This subpackage provides that machinery from scratch so the core
algorithms do not depend on any external graph library and can expose exactly
the hooks the algorithms need (edge keys in multigraphs, operation counters,
iteration traces).

Public API
----------
:class:`~repro.graphs.digraph.DiGraph`
    Weighted directed multigraph with arbitrary edge attributes.
:func:`~repro.graphs.dijkstra.dijkstra`
    Single-source shortest paths with predecessor tracking.
:func:`~repro.graphs.dijkstra.shortest_path`
    Convenience s-t shortest path returning a :class:`~repro.graphs.paths.Path`.
:func:`~repro.graphs.bellman_ford.bellman_ford`
    Reference shortest-path implementation used for cross-checking.
:func:`~repro.graphs.kshortest.k_shortest_paths`
    Yen-style loopless path enumeration in non-decreasing weight order.
:func:`~repro.graphs.connectivity.is_connected_st`
    s-t reachability used by the SSB termination criterion.
:class:`~repro.graphs.dag.DagIndex`
    Mutation-aware cache of topological order, reachability and potentials.
:func:`~repro.graphs.dag.dag_shortest_path`
    Single-pass DAG shortest path (no heap, reusable topological order).
:class:`~repro.graphs.trees.RootedTree`
    Rooted ordered tree with traversals, LCA and leaf-interval queries.
"""

from repro.graphs.digraph import DiGraph, Edge
from repro.graphs.paths import Path
from repro.graphs.dijkstra import dijkstra, shortest_path
from repro.graphs.bellman_ford import bellman_ford, bellman_ford_path
from repro.graphs.kshortest import k_shortest_paths, iter_paths_by_weight
from repro.graphs.enumeration import iter_st_paths_dag, count_st_paths_dag
from repro.graphs.connectivity import (
    is_connected_st,
    reachable_from,
    reachable_to,
    weakly_connected_components,
)
from repro.graphs.dag import (
    DagIndex,
    NotADagError,
    dag_shortest_path,
    min_weight_to_target,
)
from repro.graphs.trees import RootedTree

__all__ = [
    "DiGraph",
    "Edge",
    "Path",
    "dijkstra",
    "shortest_path",
    "bellman_ford",
    "bellman_ford_path",
    "k_shortest_paths",
    "iter_paths_by_weight",
    "iter_st_paths_dag",
    "count_st_paths_dag",
    "is_connected_st",
    "reachable_from",
    "reachable_to",
    "weakly_connected_components",
    "DagIndex",
    "NotADagError",
    "dag_shortest_path",
    "min_weight_to_target",
    "RootedTree",
]
