"""Rooted ordered trees.

The CRU tree is a rooted tree whose children have a left-to-right order (the
paper's constructions — the pre-order σ labelling of Figure 8 and the
planar-dual assignment graph of Figure 6 — depend on that order).  This module
provides the ordered-tree machinery the core package builds on:

* parent/children bookkeeping with explicit child order,
* pre-order / post-order traversals,
* lowest common ancestors,
* the DFS leaf order and the *leaf interval* covered by every node, which is
  how the assignment (dual) graph is constructed without a geometric planar
  embedding: a tree edge whose subtree covers leaves ``i..j`` separates face
  ``i-1`` from face ``j``.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Sequence, Tuple

Node = Hashable


class RootedTree:
    """A rooted tree with ordered children.

    Nodes are arbitrary hashable identifiers.  The tree is built by adding the
    root first and then adding children under existing parents; the insertion
    order of children defines the left-to-right order.
    """

    def __init__(self, root: Node) -> None:
        self._root = root
        self._children: Dict[Node, List[Node]] = {root: []}
        self._parent: Dict[Node, Optional[Node]] = {root: None}

    # ---------------------------------------------------------------- build
    @property
    def root(self) -> Node:
        return self._root

    def add_child(self, parent: Node, child: Node, index: Optional[int] = None) -> Node:
        """Attach ``child`` under ``parent``.

        ``index`` optionally positions the child among its siblings; by
        default the child becomes the new rightmost sibling.
        """
        if parent not in self._children:
            raise KeyError(f"parent {parent!r} not in tree")
        if child in self._children:
            raise ValueError(f"node {child!r} already in tree")
        self._children[child] = []
        self._parent[child] = parent
        if index is None:
            self._children[parent].append(child)
        else:
            self._children[parent].insert(index, child)
        return child

    # --------------------------------------------------------------- queries
    def nodes(self) -> List[Node]:
        return list(self.preorder())

    def has_node(self, node: Node) -> bool:
        return node in self._children

    def parent(self, node: Node) -> Optional[Node]:
        return self._parent[node]

    def children(self, node: Node) -> List[Node]:
        return list(self._children[node])

    def is_leaf(self, node: Node) -> bool:
        return not self._children[node]

    def leaves(self) -> List[Node]:
        """Leaves in DFS (left-to-right) order."""
        return [n for n in self.preorder() if self.is_leaf(n)]

    def number_of_nodes(self) -> int:
        return len(self._children)

    def edges(self) -> List[Tuple[Node, Node]]:
        """All (parent, child) pairs in pre-order of the child."""
        return [(self._parent[n], n) for n in self.preorder() if n != self._root]

    def depth(self, node: Node) -> int:
        d = 0
        cur = node
        while self._parent[cur] is not None:
            cur = self._parent[cur]
            d += 1
        return d

    def height(self) -> int:
        """Longest root-to-leaf edge count."""
        return max((self.depth(leaf) for leaf in self.leaves()), default=0)

    # ------------------------------------------------------------ traversals
    def preorder(self, start: Optional[Node] = None) -> Iterator[Node]:
        """Pre-order traversal (node before its children, children in order)."""
        start = self._root if start is None else start
        stack = [start]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(self._children[node]))

    def postorder(self, start: Optional[Node] = None) -> Iterator[Node]:
        """Post-order traversal (children before node)."""
        start = self._root if start is None else start
        out: List[Node] = []
        stack = [start]
        while stack:
            node = stack.pop()
            out.append(node)
            stack.extend(self._children[node])
        return iter(reversed(out))

    def subtree_nodes(self, node: Node) -> List[Node]:
        """All nodes of the subtree rooted at ``node`` (including ``node``)."""
        return list(self.preorder(node))

    def ancestors(self, node: Node, include_self: bool = False) -> List[Node]:
        """Ancestors from parent up to the root (optionally prefixed by node)."""
        out: List[Node] = [node] if include_self else []
        cur = self._parent[node]
        while cur is not None:
            out.append(cur)
            cur = self._parent[cur]
        return out

    def path_to_root(self, node: Node) -> List[Node]:
        return self.ancestors(node, include_self=True)

    def lca(self, a: Node, b: Node) -> Node:
        """Lowest common ancestor of ``a`` and ``b``."""
        anc_a = self.path_to_root(a)
        set_a = set(anc_a)
        cur = b
        while cur not in set_a:
            parent = self._parent[cur]
            if parent is None:
                break
            cur = parent
        if cur not in set_a:
            raise ValueError("nodes do not share an ancestor (corrupt tree)")
        return cur

    # --------------------------------------------------------- leaf intervals
    def leaf_order(self) -> Dict[Node, int]:
        """Map leaf -> position (1-based) in DFS left-to-right order."""
        return {leaf: i + 1 for i, leaf in enumerate(self.leaves())}

    def leaf_intervals(self) -> Dict[Node, Tuple[int, int]]:
        """Map every node to the 1-based inclusive interval of leaf positions
        covered by its subtree.

        A leaf maps to ``(pos, pos)``.  Intervals of siblings are disjoint and
        contiguous in left-to-right order, which is what makes the interval
        dual construction of the assignment graph exact.
        """
        order = self.leaf_order()
        interval: Dict[Node, Tuple[int, int]] = {}
        for node in self.postorder():
            if self.is_leaf(node):
                interval[node] = (order[node], order[node])
            else:
                children = self._children[node]
                lo = min(interval[c][0] for c in children)
                hi = max(interval[c][1] for c in children)
                interval[node] = (lo, hi)
        return interval

    # ----------------------------------------------------------------- misc
    def leftmost_child(self, node: Node) -> Optional[Node]:
        children = self._children[node]
        return children[0] if children else None

    def is_leftmost_child(self, node: Node) -> bool:
        parent = self._parent[node]
        if parent is None:
            return False
        return self._children[parent][0] == node

    def validate(self) -> None:
        """Raise ``ValueError`` if the structure is inconsistent."""
        seen = set()
        for node in self.preorder():
            if node in seen:
                raise ValueError(f"node {node!r} reachable twice; not a tree")
            seen.add(node)
        if seen != set(self._children):
            missing = set(self._children) - seen
            raise ValueError(f"nodes not reachable from the root: {missing!r}")
        for child, parent in self._parent.items():
            if parent is not None and child not in self._children[parent]:
                raise ValueError(f"parent pointer of {child!r} inconsistent with child list")

    def to_ascii(self) -> str:
        """Small ASCII rendering used by the CLI and examples."""
        lines: List[str] = []

        def rec(node: Node, prefix: str, is_last: bool) -> None:
            connector = "`-- " if is_last else "|-- "
            if node == self._root:
                lines.append(str(node))
            else:
                lines.append(prefix + connector + str(node))
            children = self._children[node]
            for i, child in enumerate(children):
                if node == self._root:
                    new_prefix = ""
                else:
                    new_prefix = prefix + ("    " if is_last else "|   ")
                rec(child, new_prefix, i == len(children) - 1)

        rec(self._root, "", True)
        return "\n".join(lines)

    def __contains__(self, node: Node) -> bool:
        return node in self._children

    def __len__(self) -> int:
        return len(self._children)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"RootedTree(root={self._root!r}, n={len(self._children)})"
