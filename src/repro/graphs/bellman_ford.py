"""Bellman-Ford shortest paths.

A deliberately independent shortest-path implementation used as a
cross-check for :mod:`repro.graphs.dijkstra` in the test-suite (two
implementations written from different pseudocode are unlikely to share a
bug), and usable on graphs with negative edge weights (which the assignment
graphs never have, but generated test graphs may).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.graphs.digraph import DiGraph, Edge, Node
# the *algorithm* stays independent of Dijkstra's; only the trivial
# weight-spec parsing is shared so both resolve weights identically
from repro.graphs.dijkstra import WeightSpec, weight_fn as _weight_fn
from repro.graphs.paths import Path


class NegativeCycleError(ValueError):
    """Raised when a negative-weight cycle reachable from the source exists."""


def bellman_ford(
    graph: DiGraph,
    source: Node,
    weight: WeightSpec = "weight",
) -> Tuple[Dict[Node, float], Dict[Node, Optional[Edge]]]:
    """Distances and predecessor edges from ``source`` to all reachable nodes.

    Raises :class:`NegativeCycleError` if a reachable negative cycle exists.
    """
    if not graph.has_node(source):
        raise KeyError(f"source {source!r} not in graph")
    wf = _weight_fn(weight)

    dist: Dict[Node, float] = {source: 0.0}
    pred: Dict[Node, Optional[Edge]] = {source: None}

    edges = graph.edges()
    n = graph.number_of_nodes()
    for _ in range(max(n - 1, 0)):
        changed = False
        for edge in edges:
            if edge.tail not in dist:
                continue
            cand = dist[edge.tail] + wf(edge)
            if cand < dist.get(edge.head, float("inf")) - 1e-15:
                dist[edge.head] = cand
                pred[edge.head] = edge
                changed = True
        if not changed:
            break
    else:
        # Ran all n-1 rounds with changes: check for a negative cycle.
        for edge in edges:
            if edge.tail in dist and dist[edge.tail] + wf(edge) < dist.get(edge.head, float("inf")) - 1e-9:
                raise NegativeCycleError("negative-weight cycle reachable from source")
    return dist, pred


def bellman_ford_path(
    graph: DiGraph,
    source: Node,
    target: Node,
    weight: WeightSpec = "weight",
) -> Optional[Path]:
    """Shortest ``source -> target`` path via Bellman-Ford, or ``None``."""
    dist, pred = bellman_ford(graph, source, weight=weight)
    if target not in dist:
        return None
    edges = []
    node = target
    while node != source:
        edge = pred[node]
        assert edge is not None
        edges.append(edge)
        node = edge.tail
    edges.reverse()
    if not edges:
        return Path.empty(source)
    return Path.from_edges(edges)
