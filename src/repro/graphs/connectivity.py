"""Reachability and connectivity queries.

The SSB algorithm's first termination condition is "the graph becomes
disconnected", meaning the two distinguished nodes S and T are no longer
joined by any path.  ``is_connected_st`` answers exactly that; the component
helpers are used by generators and validators.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Set

from repro.graphs.digraph import DiGraph, Node


def reachable_from(graph: DiGraph, source: Node) -> Set[Node]:
    """All nodes reachable from ``source`` following edge directions."""
    if not graph.has_node(source):
        raise KeyError(f"source {source!r} not in graph")
    seen: Set[Node] = {source}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for edge in graph.out_edges(node):
            if edge.head not in seen:
                seen.add(edge.head)
                queue.append(edge.head)
    return seen


def reachable_to(graph: DiGraph, target: Node) -> Set[Node]:
    """All nodes from which ``target`` is reachable (backward sweep over in-edges).

    The in-edge adjacency makes an explicit reversed copy of the graph
    unnecessary; the expansion step of the adapted SSB search used to build
    one per call, which dominated its cost on large graphs.
    """
    if not graph.has_node(target):
        raise KeyError(f"target {target!r} not in graph")
    seen: Set[Node] = {target}
    queue = deque([target])
    while queue:
        node = queue.popleft()
        for edge in graph.in_edges(node):
            if edge.tail not in seen:
                seen.add(edge.tail)
                queue.append(edge.tail)
    return seen


def is_connected_st(graph: DiGraph, source: Node, target: Node) -> bool:
    """True when ``target`` is reachable from ``source``."""
    if not graph.has_node(source) or not graph.has_node(target):
        return False
    return target in reachable_from(graph, source)


def weakly_connected_components(graph: DiGraph) -> List[Set[Node]]:
    """Connected components of the underlying undirected graph."""
    seen: Set[Node] = set()
    components: List[Set[Node]] = []
    for start in graph.nodes():
        if start in seen:
            continue
        comp: Set[Node] = {start}
        queue = deque([start])
        seen.add(start)
        while queue:
            node = queue.popleft()
            neighbours = [e.head for e in graph.out_edges(node)]
            neighbours += [e.tail for e in graph.in_edges(node)]
            for nb in neighbours:
                if nb not in seen:
                    seen.add(nb)
                    comp.add(nb)
                    queue.append(nb)
        components.append(comp)
    return components


def topological_order(graph: DiGraph) -> List[Node]:
    """Topological ordering of a DAG (Kahn's algorithm).

    Raises ``ValueError`` when the graph has a directed cycle.  The coloured
    assignment graph is always a DAG (edges advance the face index), so the
    coloured SSB search and the expansion step can rely on this ordering.
    """
    in_deg: Dict[Node, int] = {n: graph.in_degree(n) for n in graph.nodes()}
    queue = deque([n for n, d in in_deg.items() if d == 0])
    order: List[Node] = []
    while queue:
        node = queue.popleft()
        order.append(node)
        for edge in graph.out_edges(node):
            in_deg[edge.head] -= 1
            if in_deg[edge.head] == 0:
                queue.append(edge.head)
    if len(order) != graph.number_of_nodes():
        raise ValueError("graph has a directed cycle; no topological order exists")
    return order


def is_dag(graph: DiGraph) -> bool:
    """True when the graph has no directed cycle."""
    try:
        topological_order(graph)
        return True
    except ValueError:
        return False
