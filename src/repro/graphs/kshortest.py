"""Loopless path enumeration in non-decreasing weight order (Yen's algorithm).

The paper's adapted SSB search relies on an *expansion* step that is only
described for consecutive same-colour edges.  When a satellite's sensors are
scattered over the CRU tree the bottleneck colour's edges along a path need
not be consecutive; in that regime the coloured SSB solver falls back to a
provably correct generalisation: enumerate simple S-T paths in non-decreasing
σ (sum-weight) order and stop as soon as the next path's S weight meets or
exceeds the best SSB weight found so far (SSB(P) ≥ S(P) for every path, so no
later path can improve on the candidate).  This module provides that
enumeration.

The implementation is Yen's algorithm adapted to multigraphs: spur candidates
ban edge *keys* (not node pairs) so parallel edges are explored independently.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Iterator, List, Optional, Set, Tuple

from repro.graphs.digraph import DiGraph, Edge, Node
from repro.graphs.dijkstra import WeightSpec, shortest_path, weight_fn as _weight_fn
from repro.graphs.paths import Path


def _shortest_avoiding(
    graph: DiGraph,
    source: Node,
    target: Node,
    weight: WeightSpec,
    banned_edge_keys: Set[int],
    banned_nodes: Set[Node],
) -> Optional[Path]:
    """Shortest path that avoids the given edge keys and nodes.

    The bans are applied during Dijkstra's relaxation instead of on a mutated
    copy of the graph — Yen's algorithm issues one of these searches per spur
    node per yielded path, so copying made the enumeration quadratic in graph
    size per path.
    """
    if source in banned_nodes or target in banned_nodes:
        return None
    if not graph.has_node(source) or not graph.has_node(target):
        return None
    return shortest_path(graph, source, target, weight=weight,
                         banned_edge_keys=banned_edge_keys,
                         banned_nodes=banned_nodes)


def iter_paths_by_weight(
    graph: DiGraph,
    source: Node,
    target: Node,
    weight: WeightSpec = "weight",
    max_paths: Optional[int] = None,
) -> Iterator[Path]:
    """Yield simple ``source -> target`` paths in non-decreasing total weight.

    Parameters
    ----------
    graph, source, target:
        The search instance.
    weight:
        Edge attribute name or callable; must be non-negative.
    max_paths:
        Optional hard cap on the number of paths yielded (safety valve for
        pathological instances).

    Notes
    -----
    The generator is lazy: callers that stop early (the coloured SSB solver
    stops as soon as the running S weight crosses the candidate SSB weight)
    pay only for the paths actually requested.
    """
    wf = _weight_fn(weight)

    first = shortest_path(graph, source, target, weight=weight)
    if first is None:
        return

    yielded: List[Path] = []
    seen_keys: Set[Tuple[int, ...]] = set()
    counter = itertools.count()
    # candidate heap entries: (total weight, tiebreak, path)
    candidates: list = []

    def push_candidate(path: Path) -> None:
        keys = path.edge_keys()
        if keys in seen_keys:
            return
        seen_keys.add(keys)
        heapq.heappush(candidates, (path.total(wf), next(counter), path))

    push_candidate(first)
    produced = 0

    while candidates:
        _, _, path = heapq.heappop(candidates)
        yield path
        yielded.append(path)
        produced += 1
        if max_paths is not None and produced >= max_paths:
            return

        # Generate spur candidates from the just-yielded path.
        path_nodes = path.nodes
        for i in range(len(path.edges)):
            spur_node = path_nodes[i]
            root = path.prefix(i)

            banned_edges: Set[int] = set()
            for prev in yielded:
                if len(prev.edges) > i and prev.prefix(i).edge_keys() == root.edge_keys():
                    banned_edges.add(prev.edges[i].key)
            # Forbid revisiting the root's interior nodes to keep paths simple.
            banned_nodes = set(path_nodes[:i])

            spur = _shortest_avoiding(graph, spur_node, target, weight, banned_edges, banned_nodes)
            if spur is None:
                continue
            total = root.concat(spur) if root.edges else spur
            if total.source != source:
                # root was empty and spur started at source already
                total = spur
            if not total.is_simple():
                continue
            push_candidate(total)


def k_shortest_paths(
    graph: DiGraph,
    source: Node,
    target: Node,
    k: int,
    weight: WeightSpec = "weight",
) -> List[Path]:
    """The ``k`` shortest simple paths (fewer if the graph has fewer)."""
    if k <= 0:
        return []
    out: List[Path] = []
    for path in iter_paths_by_weight(graph, source, target, weight=weight, max_paths=k):
        out.append(path)
    return out
