"""Path value objects.

A path is an ordered sequence of edges of a :class:`~repro.graphs.digraph.DiGraph`.
The SSB/SB algorithms reason about paths exclusively through their edges (each
edge carries the σ/β weights and the colour), so the path object stores the
edge sequence and derives the node sequence from it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.graphs.digraph import Edge, Node


@dataclass(frozen=True)
class Path:
    """An s-t path represented as a tuple of edges.

    The empty path is allowed (``source == target``); it has no edges and a
    single-node node sequence.
    """

    source: Node
    target: Node
    edges: Tuple[Edge, ...]

    def __post_init__(self) -> None:
        if self.edges:
            if self.edges[0].tail != self.source:
                raise ValueError("first edge does not start at the path source")
            if self.edges[-1].head != self.target:
                raise ValueError("last edge does not end at the path target")
            for prev, nxt in zip(self.edges, self.edges[1:]):
                if prev.head != nxt.tail:
                    raise ValueError(
                        f"edges are not contiguous: {prev!r} then {nxt!r}"
                    )
        else:
            if self.source != self.target:
                raise ValueError("empty path must have source == target")

    # ------------------------------------------------------------- structure
    @property
    def nodes(self) -> Tuple[Node, ...]:
        """The node sequence visited by the path (length = #edges + 1)."""
        if not self.edges:
            return (self.source,)
        return (self.edges[0].tail,) + tuple(e.head for e in self.edges)

    def edge_keys(self) -> Tuple[int, ...]:
        return tuple(e.key for e in self.edges)

    def is_simple(self) -> bool:
        """True if the path never revisits a node."""
        nodes = self.nodes
        return len(set(nodes)) == len(nodes)

    def __len__(self) -> int:
        return len(self.edges)

    def __iter__(self) -> Iterator[Edge]:
        return iter(self.edges)

    def __contains__(self, edge: Edge) -> bool:
        return edge in self.edges

    # ------------------------------------------------------------ operations
    def total(self, weight: Callable[[Edge], float]) -> float:
        """Sum of ``weight(edge)`` along the path."""
        return float(sum(weight(e) for e in self.edges))

    def maximum(self, weight: Callable[[Edge], float]) -> float:
        """Maximum of ``weight(edge)`` along the path (0.0 for the empty path)."""
        if not self.edges:
            return 0.0
        return float(max(weight(e) for e in self.edges))

    def concat(self, other: "Path") -> "Path":
        """Concatenate two paths sharing an endpoint."""
        if self.target != other.source:
            raise ValueError("paths are not concatenable")
        return Path(source=self.source, target=other.target, edges=self.edges + other.edges)

    def prefix(self, n_edges: int) -> "Path":
        """First ``n_edges`` edges as a path."""
        if n_edges < 0 or n_edges > len(self.edges):
            raise ValueError("invalid prefix length")
        edges = self.edges[:n_edges]
        target = edges[-1].head if edges else self.source
        return Path(source=self.source, target=target, edges=edges)

    @staticmethod
    def from_edges(edges: Sequence[Edge]) -> "Path":
        """Build a path from a non-empty edge sequence."""
        if not edges:
            raise ValueError("from_edges requires at least one edge; use the constructor for empty paths")
        return Path(source=edges[0].tail, target=edges[-1].head, edges=tuple(edges))

    @staticmethod
    def empty(node: Node) -> "Path":
        return Path(source=node, target=node, edges=())

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        route = " -> ".join(repr(n) for n in self.nodes)
        return f"Path({route})"
