"""Bokhari's bottleneck objective on host-satellite instances.

Bokhari's original tree-to-host-satellites method minimises the *bottleneck
processing time* ``max(host time, max satellite load)`` — the right objective
when frames are pipelined and throughput matters.  The paper argues that for
context-aware applications the end-to-end delay ``host time + max satellite
load`` of a single frame is the quantity of interest and replaces the SB
measure by the SSB measure.

This baseline applies the SB search to the *same* coloured assignment graph
(i.e. it keeps the paper's relaxation of Bokhari's two structural assumptions
but optimises Bokhari's objective), so experiments can compare the two
objectives on identical instances: the SB-optimal partition typically has a
larger end-to-end delay than the SSB-optimal one, and vice versa for the
bottleneck time.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.assignment import Assignment
from repro.core.assignment_graph import build_assignment_graph
from repro.core.sb import SBSearch
from repro.model.problem import AssignmentProblem


def bokhari_sb_assignment(problem: AssignmentProblem) -> Tuple[Assignment, Dict[str, object]]:
    """The assignment minimising ``max(host time, max satellite load)``."""
    graph = build_assignment_graph(problem)
    result = SBSearch(colored=True).search(graph.dwg)
    if not result.found:
        raise RuntimeError("the coloured assignment graph has no S-T path; "
                           "the instance admits no feasible assignment")
    assignment = graph.path_to_assignment(result.path)
    return assignment, {
        "sb_weight": result.sb_weight,
        "s_weight": result.s_weight,
        "b_weight": result.b_weight,
        "iterations": result.iteration_count,
        "termination": result.termination,
        "bottleneck_time": assignment.bottleneck_time(),
        "end_to_end_delay": assignment.end_to_end_delay(),
    }
