"""Exhaustive enumeration of feasible partitions (ground-truth reference).

A feasible assignment is fully described by its *cut*: the set of tree-edge
children whose subtrees are offloaded to their correspondent satellites
(sensors whose raw data crosses the link count as single-node "subtrees").
Every root-to-sensor path crosses exactly one cut edge, and a subtree can
only be offloaded when all of its sensors are wired to a single satellite.

The enumeration is exponential in the tree size — the per-node recurrence is
``count(v) = [v offloadable] + Π count(child)`` — so this module is a test
oracle for small instances, not a solver.  The exact solver for realistic
sizes is :mod:`repro.baselines.pareto_dp`.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.assignment import Assignment
from repro.core.context import SolveContext
from repro.core.dwg import SSBWeighting
from repro.model.problem import AssignmentProblem


def _subtree_cut_options(problem: AssignmentProblem, cru_id: str) -> List[Tuple[str, ...]]:
    """All cuts of the subtree of ``cru_id``, as tuples of cut children.

    Each option assumes the parent of ``cru_id`` runs on the host, so the
    subtree either hangs below a cut at ``cru_id`` itself or keeps ``cru_id``
    on the host and cuts somewhere below.
    """
    tree = problem.tree
    options: List[Tuple[str, ...]] = []

    if problem.correspondent_satellite(cru_id) is not None:
        options.append((cru_id,))

    if tree.cru(cru_id).is_processing:
        children = tree.children_ids(cru_id)
        child_options = [_subtree_cut_options(problem, c) for c in children]
        if all(child_options):
            for combo in itertools.product(*child_options):
                merged: Tuple[str, ...] = tuple(itertools.chain.from_iterable(combo))
                options.append(merged)
    return options


def enumerate_cuts(problem: AssignmentProblem) -> Iterator[Tuple[str, ...]]:
    """Yield every feasible cut (the root always stays on the host)."""
    tree = problem.tree
    children = tree.children_ids(tree.root_id)
    child_options = [_subtree_cut_options(problem, c) for c in children]
    if not all(child_options):
        return
    for combo in itertools.product(*child_options):
        yield tuple(itertools.chain.from_iterable(combo))


def enumerate_assignments(problem: AssignmentProblem) -> Iterator[Assignment]:
    """Yield every feasible assignment of the instance."""
    for cut in enumerate_cuts(problem):
        offloaded = [c for c in cut if problem.tree.cru(c).is_processing]
        yield Assignment.from_cut(problem, offloaded)


def count_feasible_assignments(problem: AssignmentProblem) -> int:
    """Number of feasible assignments, computed by the product recurrence
    (no enumeration)."""
    tree = problem.tree

    def count(cru_id: str) -> int:
        total = 1 if problem.correspondent_satellite(cru_id) is not None else 0
        if tree.cru(cru_id).is_processing:
            product = 1
            for child in tree.children_ids(cru_id):
                product *= count(child)
            total += product
        return total

    product = 1
    for child in tree.children_ids(tree.root_id):
        product *= count(child)
    return product


def brute_force_assignment(problem: AssignmentProblem,
                           weighting: Optional[SSBWeighting] = None,
                           context: Optional[SolveContext] = None
                           ) -> Tuple[Assignment, Dict[str, object]]:
    """The delay-optimal assignment found by full enumeration.

    ``weighting`` generalises the objective to
    ``λ_S · host time + λ_B · max satellite load`` (default: plain sum, the
    end-to-end delay).

    Anytime: ``context`` is polled every ``context.check_stride`` enumerated
    cuts (the first cut always evaluates, so an incumbent always exists); on
    expiry the best cut seen so far is returned with
    ``details["interrupted"]`` set — no longer the proven optimum.
    """
    weighting = weighting or SSBWeighting()
    best: Optional[Assignment] = None
    best_value = float("inf")
    enumerated = 0
    interrupted: Optional[str] = None
    for assignment in enumerate_assignments(problem):
        if context is not None and enumerated \
                and enumerated % context.check_stride == 0:
            interrupted = context.interrupted()
            if interrupted is not None:
                break
        enumerated += 1
        value = weighting.combine(assignment.host_load(), assignment.max_satellite_load())
        if value < best_value:
            best, best_value = assignment, value
            if context is not None:
                context.report_incumbent(best_value, source="brute-force")
    if best is None:
        raise RuntimeError("the instance admits no feasible assignment")
    details: Dict[str, object] = {"enumerated": enumerated,
                                  "objective": best_value}
    if interrupted is not None:
        details["interrupted"] = interrupted
    return best, details
