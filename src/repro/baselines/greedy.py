"""Greedy / local-search heuristic.

A fast comparison point for the exact algorithms: start from the *maximal
offloading* cut (cut every highest subtree that has a correspondent
satellite, which minimises the host load) and hill-climb with two moves until
no move improves the end-to-end delay:

* **lower** a cut: move an offloaded subtree's root back to the host and cut
  at its children instead (reduces the load of the bottleneck satellite at
  the price of host time),
* **raise** a cut: if all children of a host CRU are currently cut and the
  CRU has a correspondent satellite, offload the whole subtree instead
  (reduces host time at the price of satellite load).

The heuristic is not optimal in general — tests demonstrate instances where
it is beaten by the exact solvers — but it is a natural baseline and provides
the incumbent solution that seeds the branch-and-bound solver.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.core.assignment import Assignment
from repro.core.context import SolveContext
from repro.model.problem import AssignmentProblem


def maximal_offload_cut(problem: AssignmentProblem) -> List[str]:
    """The highest possible cut: offload every maximal single-satellite subtree."""
    tree = problem.tree
    cut: List[str] = []

    def descend(cru_id: str) -> None:
        if problem.correspondent_satellite(cru_id) is not None:
            cut.append(cru_id)
            return
        for child in tree.children_ids(cru_id):
            descend(child)

    for child in tree.children_ids(tree.root_id):
        descend(child)
    return cut


def _cut_to_assignment(problem: AssignmentProblem, cut: List[str]) -> Assignment:
    offloaded = [c for c in cut if problem.tree.cru(c).is_processing]
    return Assignment.from_cut(problem, offloaded)


def _lower_moves(problem: AssignmentProblem, cut: List[str]) -> List[List[str]]:
    """All cuts obtained by splitting one offloaded processing subtree."""
    moves: List[List[str]] = []
    for i, child in enumerate(cut):
        if not problem.tree.cru(child).is_processing:
            continue
        grandchildren = problem.tree.children_ids(child)
        if not grandchildren:
            continue
        moves.append(cut[:i] + grandchildren + cut[i + 1:])
    return moves


def _raise_moves(problem: AssignmentProblem, cut: List[str]) -> List[List[str]]:
    """All cuts obtained by merging a full sibling group back into its parent."""
    tree = problem.tree
    cut_set: Set[str] = set(cut)
    moves: List[List[str]] = []
    candidate_parents = {tree.parent_id(c) for c in cut if tree.parent_id(c) is not None}
    for parent in candidate_parents:
        if parent == tree.root_id:
            continue
        children = tree.children_ids(parent)
        if not children or not all(c in cut_set for c in children):
            continue
        if problem.correspondent_satellite(parent) is None:
            continue
        new_cut = [c for c in cut if c not in children] + [parent]
        moves.append(new_cut)
    return moves


def greedy_assignment(problem: AssignmentProblem, max_steps: int = 10_000,
                      context: Optional[SolveContext] = None,
                      **_ignored) -> Tuple[Assignment, Dict[str, object]]:
    """Hill-climbing from the maximal-offload cut.

    Returns the best assignment found and a details dict with the number of
    improvement steps taken.  The starting cut is already feasible, so under
    a ``context`` (polled once per improvement step) the climb is anytime
    from its very first instant — which is why the portfolio solver uses it
    as the instant incumbent seed.
    """
    cut = maximal_offload_cut(problem)
    best = _cut_to_assignment(problem, cut)
    best_delay = best.end_to_end_delay()
    steps = 0
    interrupted: Optional[str] = None
    if context is not None:
        context.report_incumbent(best_delay, source="greedy")

    improved = True
    while improved and steps < max_steps:
        if context is not None:
            interrupted = context.interrupted()
            if interrupted is not None:
                break
        improved = False
        for move in _lower_moves(problem, cut) + _raise_moves(problem, cut):
            candidate = _cut_to_assignment(problem, move)
            delay = candidate.end_to_end_delay()
            if delay < best_delay - 1e-12:
                cut, best, best_delay = move, candidate, delay
                improved = True
                steps += 1
                if context is not None:
                    context.report_incumbent(best_delay, source="greedy")
                break

    details: Dict[str, object] = {"steps": steps, "delay": best_delay,
                                  "cut_size": len(cut)}
    if interrupted is not None:
        details["interrupted"] = interrupted
    return best, details
