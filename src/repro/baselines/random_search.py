"""Random-cut baseline (Monte-Carlo search).

Feasible cuts are sampled by a top-down random walk: at every node that could
be offloaded a biased coin decides between cutting there and recursing into
the children; sensors are always cut when reached.  Sampling many cuts and
keeping the best is the weakest sensible baseline and calibrates how much of
the exact algorithms' advantage comes from actually optimising.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.core.assignment import Assignment
from repro.core.context import SolveContext
from repro.model.problem import AssignmentProblem


def random_cut(problem: AssignmentProblem, rng: random.Random,
               offload_probability: float = 0.5) -> List[str]:
    """Sample one feasible cut."""
    tree = problem.tree
    cut: List[str] = []

    def descend(cru_id: str) -> None:
        offloadable = problem.correspondent_satellite(cru_id) is not None
        is_sensor = tree.cru(cru_id).is_sensor
        if offloadable and (is_sensor or rng.random() < offload_probability):
            cut.append(cru_id)
            return
        if is_sensor:
            # not offloadable sensors cannot occur (validation), defensive only
            cut.append(cru_id)
            return
        for child in tree.children_ids(cru_id):
            descend(child)

    for child in tree.children_ids(tree.root_id):
        descend(child)
    return cut


def random_assignment(problem: AssignmentProblem, seed: Optional[int] = None,
                      offload_probability: float = 0.5,
                      rng: Optional[random.Random] = None) -> Assignment:
    """One uniformly sampled feasible assignment (sensors pinned, root on host)."""
    if rng is None:
        rng = random.Random(seed)
    cut = random_cut(problem, rng, offload_probability)
    offloaded = [c for c in cut if problem.tree.cru(c).is_processing]
    return Assignment.from_cut(problem, offloaded)


def random_search_assignment(problem: AssignmentProblem, samples: int = 200,
                             seed: Optional[int] = None,
                             offload_probability: float = 0.5,
                             rng: Optional[random.Random] = None,
                             context: Optional[SolveContext] = None,
                             **_ignored) -> Tuple[Assignment, Dict[str, object]]:
    """Best of ``samples`` random feasible assignments.

    Randomness comes exclusively from ``rng`` (or a ``random.Random(seed)``
    built here) — never from the shared module-level generator — so batch
    sweeps can thread one explicitly seeded stream per task.

    Anytime: ``context`` is polled every ``context.check_stride`` samples
    (the first sample always runs, so an incumbent always exists); on expiry
    the best sample so far is returned with ``details["interrupted"]`` set.
    """
    if samples <= 0:
        raise ValueError("samples must be positive")
    if rng is None:
        rng = random.Random(seed)
    best: Optional[Assignment] = None
    best_delay = float("inf")
    drawn = 0
    interrupted: Optional[str] = None
    for index in range(samples):
        if context is not None and index and index % context.check_stride == 0:
            interrupted = context.interrupted()
            if interrupted is not None:
                break
        cut = random_cut(problem, rng, offload_probability)
        offloaded = [c for c in cut if problem.tree.cru(c).is_processing]
        assignment = Assignment.from_cut(problem, offloaded)
        delay = assignment.end_to_end_delay()
        drawn += 1
        if delay < best_delay:
            best, best_delay = assignment, delay
            if context is not None:
                context.report_incumbent(best_delay, source="random-search")
    assert best is not None
    details: Dict[str, object] = {"samples": drawn, "delay": best_delay}
    if interrupted is not None:
        details["interrupted"] = interrupted
    return best, details
