"""Exact Pareto dynamic program on the CRU tree.

An independent exact solver used to validate the paper's algorithm on
instances too large for brute force.  For every subtree (processed in
post-order) it maintains the set of Pareto-optimal cost labels

``(host time contributed by the subtree, per-satellite load vector, cut)``

where the load vector records, for every satellite, the execution plus uplink
time the subtree's cut contributes to it.  Combining children is additive in
every component; dominated labels (componentwise ≥ another label) are pruned,
which keeps the label sets small in practice.  At the root the label
minimising ``λ_S · host + λ_B · max(load)`` is selected — with the default
weighting this is exactly the end-to-end delay.

The DP makes no use of the assignment graph, the colouring or the SSB search,
so agreement with :mod:`repro.core.colored_ssb` on random instances is strong
evidence that both are correct.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.assignment import Assignment
from repro.core.dwg import SSBWeighting
from repro.model.problem import AssignmentProblem


@dataclass(frozen=True)
class ParetoLabel:
    """One non-dominated cost point of a subtree."""

    host_time: float
    loads: Tuple[float, ...]          #: per-satellite load, indexed like ``satellite_ids``
    cut: Tuple[str, ...]              #: cut children realising the label

    def dominates(self, other: "ParetoLabel") -> bool:
        """True when this label is at least as good in every component."""
        if self.host_time > other.host_time:
            return False
        return all(a <= b for a, b in zip(self.loads, other.loads))


def _prune(labels: List[ParetoLabel]) -> List[ParetoLabel]:
    """Remove dominated labels (quadratic, label sets stay small)."""
    labels = sorted(labels, key=lambda l: (l.host_time, sum(l.loads)))
    kept: List[ParetoLabel] = []
    for label in labels:
        if not any(existing.dominates(label) for existing in kept):
            kept.append(label)
    return kept


def _combine(a: ParetoLabel, b: ParetoLabel) -> ParetoLabel:
    return ParetoLabel(
        host_time=a.host_time + b.host_time,
        loads=tuple(x + y for x, y in zip(a.loads, b.loads)),
        cut=a.cut + b.cut,
    )


def _combine_children(children_labels: Sequence[List[ParetoLabel]],
                      n_satellites: int) -> List[ParetoLabel]:
    acc = [ParetoLabel(host_time=0.0, loads=(0.0,) * n_satellites, cut=())]
    for labels in children_labels:
        acc = _prune([_combine(x, y) for x in acc for y in labels])
    return acc


def pareto_frontier(problem: AssignmentProblem) -> List[ParetoLabel]:
    """Pareto-optimal (host time, per-satellite load) points of the instance.

    Every returned label corresponds to a feasible assignment (its ``cut``
    field) and no feasible assignment strictly dominates any returned label.
    """
    tree = problem.tree
    satellite_ids = problem.system.satellite_ids()
    sat_index = {sid: i for i, sid in enumerate(satellite_ids)}
    n = len(satellite_ids)

    def offload_label(cru_id: str, parent_id: str) -> Optional[ParetoLabel]:
        satellite = problem.correspondent_satellite(cru_id)
        if satellite is None:
            return None
        processing = [i for i in tree.subtree_ids(cru_id) if tree.cru(i).is_processing]
        load = sum(problem.satellite_time(i) for i in processing)
        load += problem.comm_cost(cru_id, parent_id)
        loads = [0.0] * n
        loads[sat_index[satellite]] = load
        return ParetoLabel(host_time=0.0, loads=tuple(loads), cut=(cru_id,))

    def labels_of(cru_id: str, parent_id: str) -> List[ParetoLabel]:
        options: List[ParetoLabel] = []
        offload = offload_label(cru_id, parent_id)
        if offload is not None:
            options.append(offload)
        if tree.cru(cru_id).is_processing:
            children = tree.children_ids(cru_id)
            child_labels = [labels_of(c, cru_id) for c in children]
            if all(child_labels):
                combined = _combine_children(child_labels, n)
                h = problem.host_time(cru_id)
                options.extend(
                    ParetoLabel(host_time=l.host_time + h, loads=l.loads, cut=l.cut)
                    for l in combined)
        return _prune(options)

    root_children = tree.children_ids(tree.root_id)
    child_labels = [labels_of(c, tree.root_id) for c in root_children]
    if not all(child_labels):
        raise RuntimeError("the instance admits no feasible assignment")
    combined = _combine_children(child_labels, n)
    h_root = problem.host_time(tree.root_id)
    frontier = [ParetoLabel(host_time=l.host_time + h_root, loads=l.loads, cut=l.cut)
                for l in combined]
    return _prune(frontier)


def pareto_dp_assignment(problem: AssignmentProblem,
                         weighting: Optional[SSBWeighting] = None
                         ) -> Tuple[Assignment, Dict[str, object]]:
    """The optimal assignment selected from the Pareto frontier.

    With the default weighting the objective is the end-to-end delay
    ``host time + max satellite load``.
    """
    weighting = weighting or SSBWeighting()
    frontier = pareto_frontier(problem)
    best_label = min(
        frontier,
        key=lambda l: weighting.combine(l.host_time, max(l.loads) if l.loads else 0.0),
    )
    offloaded = [c for c in best_label.cut if problem.tree.cru(c).is_processing]
    assignment = Assignment.from_cut(problem, offloaded)
    objective = weighting.combine(best_label.host_time,
                                  max(best_label.loads) if best_label.loads else 0.0)
    return assignment, {
        "frontier_size": len(frontier),
        "objective": objective,
        "host_time": best_label.host_time,
        "max_load": max(best_label.loads) if best_label.loads else 0.0,
    }
