"""Exact Pareto dynamic program on the CRU tree.

An independent exact solver used to validate the paper's algorithm on
instances too large for brute force.  For every subtree (processed in
post-order) it maintains the set of Pareto-optimal cost labels

``(host time contributed by the subtree, per-satellite load vector, cut)``

where the load vector records, for every satellite, the execution plus uplink
time the subtree's cut contributes to it.  Combining children is additive in
every component; dominated labels (componentwise ≥ another label) are pruned,
which keeps the label sets small in practice.  At the root the label
minimising ``λ_S · host + λ_B · max(load)`` is selected — with the default
weighting this is exactly the end-to-end delay.

The DP makes no use of the assignment graph, the colouring or the SSB search,
so agreement with :mod:`repro.core.colored_ssb` on random instances is strong
evidence that both are correct.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.assignment import Assignment
from repro.core.dwg import SSBWeighting
from repro.model.problem import AssignmentProblem


class FrontierExplosion(RuntimeError):
    """The Pareto frontier outgrew ``max_frontier`` — the DP would hang.

    On scattered-sensor instances around ``n_processing >= 30`` the frontier
    is known to blow up combinatorially; this error converts the hang into a
    fast, actionable failure (use the label-dominance engine instead, or
    raise the cap).
    """

    def __init__(self, size: int, limit: int) -> None:
        super().__init__(
            f"pareto-dp frontier reached {size} labels (max_frontier={limit}); "
            f"the instance is in the known blowup regime (scattered n>=30) — "
            f"use an exact method that scales (e.g. colored-ssb-labels) or "
            f"raise max_frontier")
        self.size = size
        self.limit = limit


@dataclass(frozen=True)
class ParetoLabel:
    """One non-dominated cost point of a subtree."""

    host_time: float
    loads: Tuple[float, ...]          #: per-satellite load, indexed like ``satellite_ids``
    cut: Tuple[str, ...]              #: cut children realising the label

    def dominates(self, other: "ParetoLabel") -> bool:
        """True when this label is at least as good in every component."""
        if self.host_time > other.host_time:
            return False
        return all(a <= b for a, b in zip(self.loads, other.loads))


#: Candidate sets this many times the frontier cap abort before pruning:
#: the quadratic dominance scan over them would itself take minutes.
_CANDIDATE_FACTOR = 4


def _prune(labels: List[ParetoLabel],
           max_frontier: Optional[int] = None) -> List[ParetoLabel]:
    """Remove dominated labels (quadratic, label sets stay small).

    ``max_frontier`` makes the guard *fail fast*, not merely fail: the raise
    fires the moment the surviving set first exceeds the cap (mid-scan, so
    the quadratic prune never completes over an exploded set), and a
    candidate set larger than ``_CANDIDATE_FACTOR * max_frontier`` aborts
    before the scan even starts — pruning it would already take minutes.
    """
    if max_frontier is not None and len(labels) > _CANDIDATE_FACTOR * max_frontier:
        raise FrontierExplosion(len(labels), max_frontier)
    labels = sorted(labels, key=lambda l: (l.host_time, sum(l.loads)))
    kept: List[ParetoLabel] = []
    for label in labels:
        if not any(existing.dominates(label) for existing in kept):
            kept.append(label)
            if max_frontier is not None and len(kept) > max_frontier:
                raise FrontierExplosion(len(kept), max_frontier)
    return kept


def _combine(a: ParetoLabel, b: ParetoLabel) -> ParetoLabel:
    return ParetoLabel(
        host_time=a.host_time + b.host_time,
        loads=tuple(x + y for x, y in zip(a.loads, b.loads)),
        cut=a.cut + b.cut,
    )


def _combine_children(children_labels: Sequence[List[ParetoLabel]],
                      n_satellites: int,
                      max_frontier: Optional[int] = None) -> List[ParetoLabel]:
    acc = [ParetoLabel(host_time=0.0, loads=(0.0,) * n_satellites, cut=())]
    for labels in children_labels:
        if (max_frontier is not None
                and len(acc) * len(labels) > _CANDIDATE_FACTOR * max_frontier):
            # abort before materialising the cross product at all
            raise FrontierExplosion(len(acc) * len(labels), max_frontier)
        acc = _prune([_combine(x, y) for x in acc for y in labels],
                     max_frontier)
    return acc


def pareto_frontier(problem: AssignmentProblem,
                    max_frontier: Optional[int] = None) -> List[ParetoLabel]:
    """Pareto-optimal (host time, per-satellite load) points of the instance.

    Every returned label corresponds to a feasible assignment (its ``cut``
    field) and no feasible assignment strictly dominates any returned label.
    ``max_frontier`` bounds the label sets: past it the solve raises
    :class:`FrontierExplosion` instead of grinding for hours.
    """
    tree = problem.tree
    satellite_ids = problem.system.satellite_ids()
    sat_index = {sid: i for i, sid in enumerate(satellite_ids)}
    n = len(satellite_ids)

    def offload_label(cru_id: str, parent_id: str) -> Optional[ParetoLabel]:
        satellite = problem.correspondent_satellite(cru_id)
        if satellite is None:
            return None
        processing = [i for i in tree.subtree_ids(cru_id) if tree.cru(i).is_processing]
        load = sum(problem.satellite_time(i) for i in processing)
        load += problem.comm_cost(cru_id, parent_id)
        loads = [0.0] * n
        loads[sat_index[satellite]] = load
        return ParetoLabel(host_time=0.0, loads=tuple(loads), cut=(cru_id,))

    def labels_of(cru_id: str, parent_id: str) -> List[ParetoLabel]:
        options: List[ParetoLabel] = []
        offload = offload_label(cru_id, parent_id)
        if offload is not None:
            options.append(offload)
        if tree.cru(cru_id).is_processing:
            children = tree.children_ids(cru_id)
            child_labels = [labels_of(c, cru_id) for c in children]
            if all(child_labels):
                combined = _combine_children(child_labels, n, max_frontier)
                h = problem.host_time(cru_id)
                options.extend(
                    ParetoLabel(host_time=l.host_time + h, loads=l.loads, cut=l.cut)
                    for l in combined)
        return _prune(options, max_frontier)

    root_children = tree.children_ids(tree.root_id)
    child_labels = [labels_of(c, tree.root_id) for c in root_children]
    if not all(child_labels):
        raise RuntimeError("the instance admits no feasible assignment")
    combined = _combine_children(child_labels, n, max_frontier)
    h_root = problem.host_time(tree.root_id)
    frontier = [ParetoLabel(host_time=l.host_time + h_root, loads=l.loads, cut=l.cut)
                for l in combined]
    return _prune(frontier, max_frontier)


def pareto_dp_assignment(problem: AssignmentProblem,
                         weighting: Optional[SSBWeighting] = None,
                         max_frontier: Optional[int] = None
                         ) -> Tuple[Assignment, Dict[str, object]]:
    """The optimal assignment selected from the Pareto frontier.

    With the default weighting the objective is the end-to-end delay
    ``host time + max satellite load``.  ``max_frontier`` converts the known
    frontier blowup (scattered ``n >= 30``) into :class:`FrontierExplosion`
    instead of an apparent hang.
    """
    weighting = weighting or SSBWeighting()
    frontier = pareto_frontier(problem, max_frontier=max_frontier)
    best_label = min(
        frontier,
        key=lambda l: weighting.combine(l.host_time, max(l.loads) if l.loads else 0.0),
    )
    offloaded = [c for c in best_label.cut if problem.tree.cru(c).is_processing]
    assignment = Assignment.from_cut(problem, offloaded)
    objective = weighting.combine(best_label.host_time,
                                  max(best_label.loads) if best_label.loads else 0.0)
    return assignment, {
        "frontier_size": len(frontier),
        "objective": objective,
        "host_time": best_label.host_time,
        "max_load": max(best_label.loads) if best_label.loads else 0.0,
    }
