"""Exact Pareto dynamic program on the CRU tree.

An independent exact solver used to validate the paper's algorithm on
instances too large for brute force.  For every subtree (processed in
post-order) it maintains the set of Pareto-optimal cost labels

``(host time contributed by the subtree, per-satellite load vector, cut)``

where the load vector records, for every satellite, the execution plus uplink
time the subtree's cut contributes to it.  Combining children is additive in
every component; dominated labels (componentwise ≥ another label) are pruned
via the shared :class:`~repro.core.frontier.ParetoStore` (σ-sorted, exact,
O(log F) staircase inserts on single-satellite instances).  At the root the
label minimising ``λ_S · host + λ_B · max(load)`` is selected — with the
default weighting this is exactly the end-to-end delay.

Two entry points share the DP kernel:

* :func:`pareto_dp_assignment` — the historical *frontier-exact* reference:
  every per-node frontier is complete, so the root frontier is the full
  Pareto set of the instance.  On scattered instances around
  ``n_processing >= 30`` those frontiers blow up combinatorially;
  ``max_frontier`` converts the hang into a fast :class:`FrontierExplosion`.
* :func:`pareto_dp_pruned_assignment` — the *optimum-exact* rewrite that
  survives the blowup regime: per-node frontiers are additionally pruned by
  a **completion potential** (the minimum host time the rest of the tree
  must still add — a shortest-path computation on a small "completion DAG"
  through :func:`repro.graphs.dag.min_weight_to_target`) against an
  **incumbent** found by a beam pre-pass over the same DP.  A label whose
  ``λ_S·(host + potential) + λ_B·max(load)`` reaches the incumbent cannot
  end in a better assignment (loads only grow, host grows by at least the
  potential) and is dropped before it multiplies through the cross products.
  The returned assignment is still exactly optimal — the pre-pass incumbent
  is feasible, and only provably-not-better labels are discarded — but the
  full frontier is no longer materialised, which is what makes scattered
  ``n = 30`` solve in seconds instead of raising.

The DP makes no use of the assignment graph, the colouring or the SSB search
(the completion DAG is built from the CRU tree alone), so agreement with
:mod:`repro.core.colored_ssb` on random instances is strong evidence that
both are correct — the differential harness in ``tests/test_differential.py``
pins exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.assignment import Assignment
from repro.core.context import SolveContext, SolveInterrupted
from repro.core.dwg import SSBWeighting
from repro.core.frontier import HAVE_NUMPY, ParetoStore, pareto_block_mask
from repro.model.problem import AssignmentProblem

try:                                     # optional accelerator (see frontier)
    import numpy as _np
except ImportError:                      # pragma: no cover - numpy is in CI
    _np = None

_INF = float("inf")

# A DP label is (host_time, per-satellite load tuple, cut tuple).
_Label = Tuple[float, Tuple[float, ...], Tuple[str, ...]]


class FrontierExplosion(RuntimeError):
    """The Pareto frontier outgrew ``max_frontier`` — the DP would hang.

    On scattered-sensor instances around ``n_processing >= 30`` the
    frontier-exact DP is known to blow up combinatorially; this error
    converts the hang into a fast, actionable failure (use the bound-pruned
    variant ``pareto-dp-pruned`` or the label-dominance engine instead, or
    raise the cap).
    """

    def __init__(self, size: int, limit: int,
                 labels_created: Optional[int] = None,
                 peak_frontier: Optional[int] = None) -> None:
        detail = ""
        if labels_created is not None:
            detail = (f" after {labels_created} labels created "
                      f"(peak frontier {peak_frontier})")
        super().__init__(
            f"pareto-dp frontier reached {size} labels (max_frontier={limit})"
            f"{detail}; "
            f"the instance is in the known blowup regime (scattered n>=30) — "
            f"use an exact method that scales (pareto-dp-pruned or "
            f"colored-ssb-labels) or raise max_frontier")
        self.size = size
        self.limit = limit
        #: how much work the DP had done when the cap fired — surfaced in
        #: the error envelope / dead-letter details so a blown-up task is
        #: diagnosable from `repro audit` without a re-run
        self.labels_created = labels_created
        self.peak_frontier = peak_frontier

    def error_details(self) -> Dict[str, int]:
        """Structured diagnostics for the error envelope (duck-typed hook
        picked up by :func:`repro.runtime.payload.solve_payload`)."""
        details = {"frontier_size": int(self.size),
                   "max_frontier": int(self.limit)}
        if self.labels_created is not None:
            details["labels_created"] = int(self.labels_created)
        if self.peak_frontier is not None:
            details["peak_frontier"] = int(self.peak_frontier)
        return details


@dataclass(frozen=True)
class ParetoLabel:
    """One non-dominated cost point of a subtree."""

    host_time: float
    loads: Tuple[float, ...]          #: per-satellite load, indexed like ``satellite_ids``
    cut: Tuple[str, ...]              #: cut children realising the label

    def dominates(self, other: "ParetoLabel") -> bool:
        """True when this label is at least as good in every component."""
        if self.host_time > other.host_time:
            return False
        return all(a <= b for a, b in zip(self.loads, other.loads))


#: Candidate cross products this many times the frontier cap abort before
#: being materialised: even O(1)-rejected candidates cost a scan each.  The
#: bound-pruned passes get a much larger factor — their candidates are mostly
#: rejected in O(1) by the completion bound before touching the frontier, so
#: a large cross product is routine there, not a symptom of blowup.
_CANDIDATE_FACTOR = 4
_BOUNDED_CANDIDATE_FACTOR = 256

#: Default beam width of the pruned solver's incumbent pre-pass.
_PRUNED_BEAM_WIDTH = 16

#: Streamed cross products: folds with at least this many candidate pairs
#: run through the vectorised chunked kernel (numpy) instead of the
#: per-pair python loop; each chunk materialises at most this many pairs.
_STREAM_MIN_PAIRS = 2048
_STREAM_CHUNK_PAIRS = 1 << 18
#: label-list size past which the host-time fold at a node bypasses the
#: per-row ParetoStore inserts (O(frontier²) python) for the vectorised
#: ``finish_fold`` tail.
_STREAM_MIN_LABELS = 512
#: dominator-window cap for the streamed fold's Pareto masks.  An
#: unwindowed mask is quadratic in the frontier and dwarfs the whole fold
#: on wide stars; the window makes it linear.  Rows a distant dominator
#: would have removed merely survive into the next fold (extra work), they
#: are never wrongly dropped — exactness is unaffected.  With the
#: completion bounds doing the heavy pruning, a small window beats a
#: thorough one: on wide stars at n=40 window 128 is ~3x faster end to end
#: than 1024 while the peak frontier grows by less than half.
_STREAM_MASK_WINDOW = 128


# --------------------------------------------------------------------------
# Completion potentials: the min host time the rest of the tree must add.
# --------------------------------------------------------------------------
def _min_host_times(problem: AssignmentProblem) -> Dict[str, float]:
    """Minimum host time each subtree can contribute (``inf`` if infeasible).

    ``minhost(u) = min(0 if u is offloadable, h_u + Σ_children minhost)`` —
    the host branch only exists for processing CRUs.  This is the edge-weight
    oracle of the completion DAG below.
    """
    tree = problem.tree
    minhost: Dict[str, float] = {}

    def rec(cru_id: str) -> float:
        off = 0.0 if problem.correspondent_satellite(cru_id) is not None else _INF
        host = _INF
        if tree.cru(cru_id).is_processing:
            host = problem.host_time(cru_id)
            for child in tree.children_ids(cru_id):
                host += rec(child)
        value = off if off < host else host
        minhost[cru_id] = value
        return value

    for child in tree.children_ids(tree.root_id):
        rec(child)
    return minhost


def _joint_minima(problem: AssignmentProblem, lam_s: float, lam_b: float,
                  n: int) -> Dict[str, float]:
    """Minimum *objective* contribution each subtree must add.

    Every subtree is eventually either offloaded — its load lands on one
    satellite, raising the load sum by ``β_u`` and hence the max load by at
    least ``β_u / n`` — or processed on the host, paying ``λ_S·h_u`` plus
    its children's own minima.  ``jointmin(u)`` is the cheaper of the two:
    a valid additive lower bound on ``λ_S·σ + λ_B·max-load`` still owed by
    ``u``, the DP-side analogue of the label engine's joint σ/β potential.
    """
    tree = problem.tree
    inv = 1.0 / n
    jm: Dict[str, float] = {}

    def rec(u: str, parent: str) -> float:
        off = _INF
        if problem.correspondent_satellite(u) is not None:
            load = sum(problem.satellite_time(i)
                       for i in tree.subtree_ids(u)
                       if tree.cru(i).is_processing)
            load += problem.comm_cost(u, parent)
            off = lam_b * load * inv
        host = _INF
        if tree.cru(u).is_processing:
            host = lam_s * problem.host_time(u)
            for c in tree.children_ids(u):
                host += rec(c, u)
        jm[u] = off if off < host else host
        return jm[u]

    for c in tree.children_ids(tree.root_id):
        rec(c, tree.root_id)
    return jm


def _per_colour_minima(problem: AssignmentProblem, lam_s: float,
                       lam_b: float) -> List[Dict[str, float]]:
    """Per-colour floors: min contribution of each subtree to one colour.

    Offloading is colour-pinned — subtree ``u`` can only land on its one
    correspondent satellite — so for a fixed colour ``c`` every subtree
    either pays ``λ_B·β_u`` on colour ``c`` (offload, when its
    correspondent has colour ``c``), pays nothing on ``c`` (offload to a
    different colour), or pays ``λ_S·h_u`` plus its children's floors
    (host).  ``pc[c][u]`` is the cheapest of the available options: an
    additive lower bound on ``λ_S·σ + λ_B·load_c`` still owed by ``u``.
    Unlike the avg-load joint bound this does not dilute offloaded mass by
    ``1/n``, so it is strictly tighter whenever loads concentrate.
    """
    tree = problem.tree
    satellite_ids = problem.system.satellite_ids()
    sat_index = {sid: i for i, sid in enumerate(satellite_ids)}
    dim = len(satellite_ids)
    tables: List[Dict[str, float]] = [dict() for _ in range(dim)]

    def rec(u: str, parent: str) -> List[float]:
        sat = problem.correspondent_satellite(u)
        beta = _INF
        colour = -1
        if sat is not None:
            load = sum(problem.satellite_time(i)
                       for i in tree.subtree_ids(u)
                       if tree.cru(i).is_processing)
            beta = load + problem.comm_cost(u, parent)
            colour = sat_index[sat]
        hostable = tree.cru(u).is_processing
        child_vals: List[List[float]] = []
        if hostable:
            child_vals = [rec(ch, u) for ch in tree.children_ids(u)]
        h = lam_s * problem.host_time(u)
        out: List[float] = []
        for c in range(dim):
            off = _INF
            if sat is not None:
                off = lam_b * beta if colour == c else 0.0
            host = _INF
            if hostable:
                host = h + sum(v[c] for v in child_vals)
            val = off if off < host else host
            tables[c][u] = val
            out.append(val)
        return out

    for ch in tree.children_ids(tree.root_id):
        rec(ch, tree.root_id)
    return tables


def _completion_potentials(problem: AssignmentProblem,
                           minhost: Dict[str, float],
                           host_scale: float = 1.0
                           ) -> Tuple[Dict[Tuple[str, int], float],
                                      Dict[str, float]]:
    """Lower bounds on the host time still missing from a partial DP label.

    The DP's states form a DAG: ``(u, i)`` means "the first ``i`` children of
    processing CRU ``u`` are folded into the label".  Each state has exactly
    one way forward — fold the next child (weight ``minhost(child)``), or,
    once complete, add ``h_u`` and join the parent's combination after the
    already-folded elder siblings (weight ``h_u + Σ elder minhost``); the
    root's complete state adds ``h_root`` and finishes.  The min σ from a
    state to the finish node — one :func:`~repro.graphs.dag.min_weight_to_target`
    pass over this *completion DAG* — is therefore a valid potential: every
    feasible assignment containing a label of state ``(u, i)`` pays at least
    that much additional host time.

    Returns ``(pot_state, pot_opt)``: per DP state, and per tree node for
    labels sitting in a node's finished option frontier (offload or
    host-combined) awaiting their fold into the parent.

    ``minhost`` doubles as a generic per-subtree weight oracle:
    with :func:`_joint_minima` and ``host_scale=λ_S`` the same DAG yields
    the *joint* σ/β potentials (objective units) behind the avg-load bound.
    """
    from repro.graphs.dag import min_weight_to_target
    from repro.graphs.digraph import DiGraph

    tree = problem.tree
    graph = DiGraph()
    target = ("done",)
    graph.add_node(target)
    prefix_sums: Dict[str, float] = {}   # node -> Σ minhost of elder siblings
    for u in tree.processing_ids():
        children = tree.children_ids(u)
        running = 0.0
        for i, child in enumerate(children):
            graph.add_edge(("state", u, i), ("state", u, i + 1),
                           weight=minhost[child])
            prefix_sums[child] = running
            running += minhost[child]
        complete = ("state", u, len(children))
        if u == tree.root_id:
            graph.add_edge(complete, target,
                           weight=host_scale * problem.host_time(u))
        else:
            parent = tree.parent_id(u)
            idx = tree.children_ids(parent).index(u)
            graph.add_edge(complete, ("state", parent, idx + 1),
                           weight=host_scale * problem.host_time(u)
                           + prefix_sums[u])
    pot = min_weight_to_target(graph, target, weight="weight")

    pot_state: Dict[Tuple[str, int], float] = {}
    for node in graph.nodes():
        if node != target:
            _, u, i = node
            pot_state[(u, i)] = pot.get(node, _INF)
    pot_opt: Dict[str, float] = {}
    for u in tree.cru_ids():
        if u == tree.root_id:
            continue
        parent = tree.parent_id(u)
        idx = tree.children_ids(parent).index(u)
        pot_opt[u] = pot_state.get((parent, idx + 1), _INF) + \
            prefix_sums.get(u, 0.0)
    return pot_state, pot_opt


# --------------------------------------------------------------------------
# The DP kernel, shared by the frontier-exact and the bound-pruned solvers.
# --------------------------------------------------------------------------
def _dp_labels(problem: AssignmentProblem, *,
               max_frontier: Optional[int] = None,
               pot_state: Optional[Dict[Tuple[str, int], float]] = None,
               pot_opt: Optional[Dict[str, float]] = None,
               jpot_state: Optional[Dict[Tuple[str, int], float]] = None,
               jpot_opt: Optional[Dict[str, float]] = None,
               cpot_state: Optional[List[Dict[Tuple[str, int], float]]] = None,
               cpot_opt: Optional[List[Dict[str, float]]] = None,
               bound: float = _INF,
               lam_s: float = 1.0, lam_b: float = 1.0,
               beam_width: Optional[int] = None,
               context: Optional[SolveContext] = None,
               profile=None,
               ) -> Tuple[List[_Label], Dict[str, int]]:
    """Run the tree DP; returns the root frontier labels plus prune counters.

    Without potentials/bound/beam this is the frontier-exact DP.  With them,
    inserts go through :meth:`ParetoStore.insert_bounded` (labels provably at
    or above ``bound`` are dropped) and ``beam_width`` truncates every
    frontier to the labels of best completion bound — the heuristic pre-pass
    whose best root label seeds the exact pass's incumbent.

    ``context`` is polled once per tree node and once per cross-product row
    (the two loop granularities that dominate the runtime); when it fires the
    kernel raises the matching :class:`SolveInterrupted` — the DP holds no
    usable partial answer, so the entry points translate the interruption
    into their own feasible fallbacks.
    """
    tree = problem.tree
    satellite_ids = problem.system.satellite_ids()
    sat_index = {sid: i for i, sid in enumerate(satellite_ids)}
    n = len(satellite_ids)
    pot_state = pot_state or {}
    pot_opt = pot_opt or {}
    bounded = bound != _INF or beam_width is not None
    # joint σ/β bound: λ_S·σ + λ_B·(Σ loads)/n + jpot ≤ the label's best
    # completion (the max load is at least the average); prunes only with a
    # finite incumbent, but the beam pre-pass still ranks by it
    have_joint = (jpot_state is not None and jpot_opt is not None and n > 0)
    joint = have_joint and bound != _INF
    inv_n = 1.0 / n if n else 0.0
    # per-colour floors: λ_S·σ + λ_B·load_c + cpot_c ≤ the label's best
    # completion for every colour c — tighter than the avg bound whenever
    # the remaining offloads concentrate on few colours
    have_colour = (cpot_state is not None and cpot_opt is not None and n > 0)
    colour = have_colour and bound != _INF

    def cpots(key, table) -> Optional[Tuple[float, ...]]:
        if not have_colour:
            return None
        return tuple(table[c].get(key, 0.0) for c in range(n))

    def beam_key(pot: float, jpot: float,
                 cpot: Optional[Tuple[float, ...]]):
        """Best-completion estimate used to rank beam survivors: the max of
        every admissible floor available.  A sharper rank keeps the labels
        the exact pass would keep, so a narrow beam lands a near-optimal
        incumbent."""
        def key(lab: _Label) -> float:
            sig, loads = lab[0], lab[1]
            est = lam_s * (sig + pot) + \
                lam_b * (max(loads) if loads else 0.0)
            if have_joint:
                alt = lam_s * sig + lam_b * sum(loads) * inv_n + jpot
                if alt > est:
                    est = alt
            if cpot is not None:
                base = lam_s * sig
                for c in range(n):
                    alt = base + lam_b * loads[c] + cpot[c]
                    if alt > est:
                        est = alt
            return est
        return key
    stats = {"created": 0, "dominated": 0, "evicted": 0, "bound_rejected": 0,
             "peak_frontier": 0, "drains": 0}

    def drain(store: ParetoStore, pot: float, node=None,
              jpot: float = 0.0,
              cpot: Optional[Tuple[float, ...]] = None) -> List[_Label]:
        stats["dominated"] += store.dominated
        stats["evicted"] += store.evicted
        stats["bound_rejected"] += store.bound_rejected
        stats["drains"] += 1
        if len(store) > stats["peak_frontier"]:
            stats["peak_frontier"] = len(store)
        if profile is not None and node is not None:
            profile.record_node(
                node,
                created=len(store) + store.dominated + store.bound_rejected,
                dominated=store.dominated + store.evicted,
                pruned_floor=store.bound_rejected,
                frontier=len(store), settle_batches=1)
        labels: List[_Label] = [(s, loads, cut) for s, loads, cut in store]
        if beam_width is not None and len(labels) > beam_width:
            labels.sort(key=beam_key(pot, jpot, cpot))
            del labels[beam_width:]
        return labels

    def insert(store: ParetoStore, label: _Label, pot: float,
               jpot: float = 0.0,
               cpot: Optional[Tuple[float, ...]] = None) -> None:
        stats["created"] += 1
        if joint and lam_s * label[0] + lam_b * sum(label[1]) * inv_n \
                + jpot >= bound:
            stats["bound_rejected"] += 1
            return
        if colour and cpot is not None:
            sig = lam_s * label[0]
            for c in range(n):
                if sig + lam_b * label[1][c] + cpot[c] >= bound:
                    stats["bound_rejected"] += 1
                    return
        if bounded:
            kept = store.insert_bounded(label[0], label[1], label[2],
                                        potential=pot, bound=bound,
                                        lambda_s=lam_s, lambda_b=lam_b)
        else:
            kept = store.insert(label[0], label[1], label[2])
        if kept and max_frontier is not None and len(store) > max_frontier:
            raise FrontierExplosion(
                len(store), max_frontier,
                labels_created=stats["created"],
                peak_frontier=max(stats["peak_frontier"], len(store)))

    def offload_label(cru_id: str, parent_id: str) -> Optional[_Label]:
        satellite = problem.correspondent_satellite(cru_id)
        if satellite is None:
            return None
        processing = [i for i in tree.subtree_ids(cru_id)
                      if tree.cru(i).is_processing]
        load = sum(problem.satellite_time(i) for i in processing)
        load += problem.comm_cost(cru_id, parent_id)
        loads = [0.0] * n
        loads[sat_index[satellite]] = load
        return (0.0, tuple(loads), (cru_id,))

    def combine_fold_stream(cru_id: str, i: int, acc: List[_Label],
                            labels: List[_Label], pot: float,
                            jpot: float = 0.0,
                            cpot: Optional[Tuple[float, ...]] = None
                            ) -> List[_Label]:
        """One child fold as a chunked, vectorised cross product.

        Identical semantics to the per-pair loop below — every candidate
        pair counts as created, the completion bound drops pairs first
        (``bound_rejected``), dominance is the exact componentwise filter of
        :meth:`ParetoStore.insert` via :func:`pareto_block_mask`, and the
        frontier cap raises :class:`FrontierExplosion` — but the ``A x B``
        product streams through bounded-size chunks of float arrays instead
        of materialising per-pair python tuples, and the cut tuples are
        built only for the rows that survive both filters.
        """
        A, B = len(acc), len(labels)
        base = (stats["created"], stats["dominated"],
                stats["bound_rejected"])
        ah = _np.array([lab[0] for lab in acc])
        al = _np.array([lab[1] for lab in acc]).reshape(A, n)
        bh = _np.array([lab[0] for lab in labels])
        bl = _np.array([lab[1] for lab in labels]).reshape(B, n)
        cp = _np.asarray(cpot) if cpot is not None else None
        rows = max(1, _STREAM_CHUNK_PAIRS // B)
        sigs: List[object] = []
        loads: List[object] = []
        pairs: List[object] = []
        for a0 in range(0, A, rows):
            if context is not None:
                context.checkpoint()
            a1 = min(a0 + rows, A)
            hs = (ah[a0:a1, None] + bh[None, :]).ravel()
            ld = (al[a0:a1, None, :] + bl[None, :, :]).reshape(-1, n)
            stats["created"] += len(hs)
            if bound != _INF:
                obj = lam_s * (hs + pot) + lam_b * ld.max(axis=1)
                keep = obj < bound
                if joint:
                    keep &= lam_s * hs + lam_b * ld.sum(axis=1) * inv_n \
                        + jpot < bound
                if cp is not None:
                    keep &= (lam_s * hs[:, None] + lam_b * ld
                             + cp[None, :] < bound).all(axis=1)
                kept = int(keep.sum())
                stats["bound_rejected"] += len(hs) - kept
                if not kept:
                    continue
                idx = _np.nonzero(keep)[0]
                hs, ld = hs[idx], ld[idx]
            else:
                idx = _np.arange(len(hs))
            if len(hs) > 1:
                # chunk-local dominance filter keeps the accumulation small
                mask = pareto_block_mask(hs, ld,
                                         window=_STREAM_MASK_WINDOW)
                drop = len(hs) - int(mask.sum())
                if drop:
                    stats["dominated"] += drop
                    hs, ld, idx = hs[mask], ld[mask], idx[mask]
            sigs.append(hs)
            loads.append(ld)
            pairs.append(idx + a0 * B)     # chunk-flat -> product-flat index
        if sigs:
            sig = _np.concatenate(sigs)
            ld = _np.concatenate(loads)
            pair = _np.concatenate(pairs)
            if len(sigs) > 1 and len(sig) > 1:
                mask = pareto_block_mask(sig, ld,
                                         window=_STREAM_MASK_WINDOW)
                drop = len(sig) - int(mask.sum())
                if drop:
                    stats["dominated"] += drop
                    sig, ld, pair = sig[mask], ld[mask], pair[mask]
        else:
            sig = ld = pair = ()
        if max_frontier is not None and len(sig) > max_frontier:
            raise FrontierExplosion(
                len(sig), max_frontier,
                labels_created=stats["created"],
                peak_frontier=max(stats["peak_frontier"], len(sig)))
        stats["drains"] += 1
        if len(sig) > stats["peak_frontier"]:
            stats["peak_frontier"] = len(sig)
        if profile is not None:
            profile.record_node(
                f"{cru_id}/{i + 1}",
                created=stats["created"] - base[0],
                dominated=stats["dominated"] - base[1],
                pruned_floor=stats["bound_rejected"] - base[2],
                frontier=len(sig), settle_batches=1)
        out: List[_Label] = []
        for s, lo, p in zip(sig, ld, pair):
            ai, bi = divmod(int(p), B)
            out.append((float(s), tuple(lo.tolist()),
                        acc[ai][2] + labels[bi][2]))
        if beam_width is not None and len(out) > beam_width:
            out.sort(key=beam_key(pot, jpot, cpot))
            del out[beam_width:]
        return out

    def combine_children(cru_id: str,
                         children_labels: Sequence[List[_Label]]
                         ) -> List[_Label]:
        acc: List[_Label] = [(0.0, (0.0,) * n, ())]
        factor = _BOUNDED_CANDIDATE_FACTOR if bounded else _CANDIDATE_FACTOR
        for i, labels in enumerate(children_labels):
            if (max_frontier is not None
                    and len(acc) * len(labels) > factor * max_frontier):
                # abort before materialising the cross product at all
                raise FrontierExplosion(len(acc) * len(labels), max_frontier,
                                        labels_created=stats["created"],
                                        peak_frontier=stats["peak_frontier"])
            pot = pot_state.get((cru_id, i + 1), 0.0)
            jpot = jpot_state.get((cru_id, i + 1), 0.0) \
                if have_joint else 0.0
            cpot = cpots((cru_id, i + 1), cpot_state)
            if (HAVE_NUMPY and n
                    and len(acc) * len(labels) >= _STREAM_MIN_PAIRS):
                acc = combine_fold_stream(cru_id, i, acc, labels, pot,
                                          jpot, cpot)
                continue
            store = ParetoStore(n)
            for ah, aloads, acut in acc:
                if context is not None:
                    context.checkpoint()
                for bh, bloads, bcut in labels:
                    insert(store,
                           (ah + bh,
                            tuple(x + y for x, y in zip(aloads, bloads)),
                            acut + bcut),
                           pot, jpot, cpot)
            acc = drain(store, pot, node=f"{cru_id}/{i + 1}",
                        jpot=jpot, cpot=cpot)
        return acc

    def finish_fold(node: str, combined: List[_Label], h: float,
                    offload: Optional[_Label], pot: float,
                    jpot: float = 0.0,
                    cpot: Optional[Tuple[float, ...]] = None
                    ) -> List[_Label]:
        """Vectorised tail of :func:`labels_of`: fold the host time into an
        already Pareto-filtered label list, apply the completion bound, and
        merge the (single) offload label.  The per-row ``insert`` loop is
        O(frontier²) python exactly where the stream fold just spent effort
        keeping the frontier flat; adding the constant ``h`` to every σ
        leaves dominance unchanged, so no re-filter is needed beyond the
        offload cross-check."""
        base = (stats["created"], stats["dominated"],
                stats["bound_rejected"])
        hs = _np.array([lab[0] for lab in combined]) + h
        ld = _np.array([lab[1] for lab in combined]).reshape(-1, n)
        stats["created"] += len(combined)
        keep = _np.ones(len(combined), dtype=bool)
        if bound != _INF:
            obj = lam_s * (hs + pot) + lam_b * ld.max(axis=1)
            keep &= obj < bound
            if joint:
                keep &= lam_s * hs + lam_b * ld.sum(axis=1) * inv_n \
                    + jpot < bound
            if cpot is not None:
                cp = _np.asarray(cpot)
                keep &= (lam_s * hs[:, None] + lam_b * ld
                         + cp[None, :] < bound).all(axis=1)
            stats["bound_rejected"] += len(combined) - int(keep.sum())
        keep_off = False
        if offload is not None:
            stats["created"] += 1
            oh, ol = offload[0], _np.asarray(offload[1], dtype=_np.float64)
            keep_off = True
            if bound != _INF and (
                    lam_s * (oh + pot) + lam_b * float(ol.max()) >= bound
                    or (joint and lam_s * oh + lam_b * float(ol.sum())
                        * inv_n + jpot >= bound)
                    or (cpot is not None and any(
                        lam_s * oh + lam_b * float(ol[c]) + cpot[c] >= bound
                        for c in range(n)))):
                stats["bound_rejected"] += 1
                keep_off = False
            if keep_off:
                # the offload label sits first in insertion order, so exact
                # ties go to it — mirrored by `<=` in both directions here
                dom_off = ((oh <= hs) & (ol[None, :] <= ld).all(axis=1)
                           & keep)
                dropped = int(dom_off.sum())
                if dropped:
                    stats["dominated"] += dropped
                    keep &= ~dom_off
                beats = ((hs <= oh) & (ld <= ol[None, :]).all(axis=1)
                         & keep)
                if bool(beats.any()):
                    stats["dominated"] += 1
                    keep_off = False
        idx = _np.nonzero(keep)[0]
        labels: List[_Label] = [offload] if keep_off else []
        labels += [(float(hs[i]), tuple(ld[i].tolist()), combined[i][2])
                   for i in idx.tolist()]
        if max_frontier is not None and len(labels) > max_frontier:
            raise FrontierExplosion(
                len(labels), max_frontier,
                labels_created=stats["created"],
                peak_frontier=max(stats["peak_frontier"], len(labels)))
        stats["drains"] += 1
        if len(labels) > stats["peak_frontier"]:
            stats["peak_frontier"] = len(labels)
        if profile is not None:
            profile.record_node(
                node,
                created=stats["created"] - base[0],
                dominated=stats["dominated"] - base[1],
                pruned_floor=stats["bound_rejected"] - base[2],
                frontier=len(labels), settle_batches=1)
        if beam_width is not None and len(labels) > beam_width:
            labels.sort(key=beam_key(pot, jpot, cpot))
            del labels[beam_width:]
        return labels

    def labels_of(cru_id: str, parent_id: str) -> List[_Label]:
        if context is not None:
            context.checkpoint()
        pot = pot_opt.get(cru_id, 0.0)
        jpot = jpot_opt.get(cru_id, 0.0) if have_joint else 0.0
        cpot = cpots(cru_id, cpot_opt)
        offload = offload_label(cru_id, parent_id)
        combined: Optional[List[_Label]] = None
        if tree.cru(cru_id).is_processing:
            children = tree.children_ids(cru_id)
            child_labels = [labels_of(c, cru_id) for c in children]
            if all(child_labels):
                combined = combine_children(cru_id, child_labels)
        if combined and HAVE_NUMPY and n \
                and len(combined) >= _STREAM_MIN_LABELS:
            return finish_fold(cru_id, combined, problem.host_time(cru_id),
                               offload, pot, jpot, cpot)
        store = ParetoStore(n)
        if offload is not None:
            insert(store, offload, pot, jpot, cpot)
        if combined:
            h = problem.host_time(cru_id)
            for ch, cloads, ccut in combined:
                insert(store, (ch + h, cloads, ccut), pot, jpot, cpot)
        return drain(store, pot, node=cru_id, jpot=jpot, cpot=cpot)

    root = tree.root_id
    root_children = tree.children_ids(root)
    child_labels = [labels_of(c, root) for c in root_children]
    if not bounded and not all(child_labels):
        raise RuntimeError("the instance admits no feasible assignment")
    if not all(child_labels):
        return [], stats        # everything provably at/above the incumbent
    combined = combine_children(root, child_labels)
    h_root = problem.host_time(root)
    # h_root folded in: the completion potential of a final label is 0,
    # so the bound check compares the exact objective to the incumbent
    if combined and HAVE_NUMPY and n and len(combined) >= _STREAM_MIN_LABELS:
        return finish_fold(root, combined, h_root, None, 0.0), stats
    store = ParetoStore(n)
    for ch, cloads, ccut in combined:
        insert(store, (ch + h_root, cloads, ccut), 0.0)
    return drain(store, 0.0, node=root), stats


# --------------------------------------------------------------------------
# Public entry points.
# --------------------------------------------------------------------------
def pareto_frontier(problem: AssignmentProblem,
                    max_frontier: Optional[int] = None) -> List[ParetoLabel]:
    """Pareto-optimal (host time, per-satellite load) points of the instance.

    Every returned label corresponds to a feasible assignment (its ``cut``
    field) and no feasible assignment strictly dominates any returned label.
    ``max_frontier`` bounds the label sets: past it the solve raises
    :class:`FrontierExplosion` instead of grinding for hours.
    """
    labels, _ = _dp_labels(problem, max_frontier=max_frontier)
    return [ParetoLabel(host_time=h, loads=loads, cut=cut)
            for h, loads, cut in labels]


def _select(labels: Sequence[_Label], weighting: SSBWeighting) -> _Label:
    return min(labels, key=lambda lab: weighting.combine(
        lab[0], max(lab[1]) if lab[1] else 0.0))


def _greedy_fallback(problem: AssignmentProblem, weighting: SSBWeighting,
                     interrupted: str, context: Optional[SolveContext]
                     ) -> Tuple[Assignment, Dict[str, object]]:
    """Feasible anytime answer when the DP was interrupted mid-kernel.

    The tree DP holds no usable partial solution (its labels only become
    assignments at the root), so the best-so-far incumbent of an interrupted
    DP is the near-instant greedy hill-climb — run context-free: the context
    already fired.
    """
    from repro.baselines.greedy import greedy_assignment

    assignment, greedy_details = greedy_assignment(problem)
    objective = weighting.combine(assignment.host_load(),
                                  assignment.max_satellite_load())
    if context is not None:
        context.report_incumbent(objective, source="greedy-fallback")
    return assignment, {
        "objective": objective,
        "interrupted": interrupted,
        "fallback": "greedy",
        "greedy_steps": greedy_details["steps"],
    }


def _span_profile(context: Optional[SolveContext]):
    """The active span's profile accumulator on a traced solve, else None."""
    if context is None:
        return None
    span = getattr(context, "span", None)
    if span is None:
        return None
    return span.ensure_profile("pareto-dp")


def _dp_profile(stats: Dict[str, int]) -> Dict[str, object]:
    """Bound-effectiveness profile of one DP run (flat scalars).

    The DP prunes with a single completion bound (state potential plus load
    floors — a floor-type bound), so ``pruned_floor`` carries all of its
    rejections; the joint/settle slots exist only in the label sweep.
    """
    return {
        "engine": "pareto-dp",
        "labels_created": stats["created"],
        "labels_dominated": stats["dominated"] + stats["evicted"],
        "pruned_floor": stats["bound_rejected"],
        "pruned_colour": 0,
        "pruned_joint": 0,
        "pruned_settle": 0,
        "pruned_meet": 0,
        "pruned_total": stats["bound_rejected"],
        "frontier_peak": stats["peak_frontier"],
        "settle_batches": stats["drains"],
        "nodes_swept": stats["drains"],
    }


def pareto_dp_assignment(problem: AssignmentProblem,
                         weighting: Optional[SSBWeighting] = None,
                         max_frontier: Optional[int] = None,
                         context: Optional[SolveContext] = None
                         ) -> Tuple[Assignment, Dict[str, object]]:
    """The optimal assignment selected from the (full) Pareto frontier.

    With the default weighting the objective is the end-to-end delay
    ``host time + max satellite load``.  ``max_frontier`` converts the known
    frontier blowup (scattered ``n >= 30``) into :class:`FrontierExplosion`
    instead of an apparent hang; :func:`pareto_dp_pruned_assignment` solves
    that regime exactly without materialising the frontier.  A ``context``
    deadline/cancellation mid-DP falls back to the greedy heuristic — a
    valid feasible answer — with ``details["interrupted"]`` set.
    """
    weighting = weighting or SSBWeighting()
    try:
        labels, stats = _dp_labels(problem, max_frontier=max_frontier,
                                   context=context,
                                   profile=_span_profile(context))
    except SolveInterrupted as exc:
        return _greedy_fallback(problem, weighting, exc.kind, context)
    best = _select(labels, weighting)
    return _finish(problem, weighting, best, {
        "frontier_size": len(labels),
        "labels_dominated": stats["dominated"],
        "labels_evicted": stats["evicted"],
        "profile": _dp_profile(stats),
    })


def pareto_dp_pruned_assignment(problem: AssignmentProblem,
                                weighting: Optional[SSBWeighting] = None,
                                max_frontier: Optional[int] = None,
                                beam_width: int = _PRUNED_BEAM_WIDTH,
                                context: Optional[SolveContext] = None
                                ) -> Tuple[Assignment, Dict[str, object]]:
    """Exact optimum via the frontier-pruned DP (scattered ``n=30`` regime).

    Two passes over the same DP kernel: a beam pre-pass (frontiers truncated
    to the ``beam_width`` labels of best completion bound) finds a feasible
    incumbent, then the exact pass prunes every label whose completion
    potential proves it cannot beat that incumbent.  The optimum either
    strictly beats the incumbent — then the exact pass finds it — or equals
    it, in which case the pre-pass label is already optimal.  ``max_frontier``
    stays as a true safety valve; it should only fire on instances whose
    *pruned* frontiers still explode.

    Anytime behaviour under a ``context``: an interruption during the beam
    pre-pass falls back to greedy; one during the exact pass returns the beam
    incumbent — both are valid feasible assignments, flagged via
    ``details["interrupted"]``.
    """
    weighting = weighting or SSBWeighting()
    if beam_width < 1:
        raise ValueError("beam_width must be at least 1")
    lam_s, lam_b = weighting.lambda_s, weighting.lambda_b
    minhost = _min_host_times(problem)
    pot_state, pot_opt = _completion_potentials(problem, minhost)
    n_sats = len(problem.system.satellite_ids())
    jpot_state = jpot_opt = cpot_state = cpot_opt = None
    if n_sats:
        jpot_state, jpot_opt = _completion_potentials(
            problem, _joint_minima(problem, lam_s, lam_b, n_sats),
            host_scale=lam_s)
        cpot_state, cpot_opt = [], []
        for pc in _per_colour_minima(problem, lam_s, lam_b):
            st, op = _completion_potentials(problem, pc, host_scale=lam_s)
            cpot_state.append(st)
            cpot_opt.append(op)

    try:
        beam_labels, beam_stats = _dp_labels(
            problem, pot_state=pot_state, pot_opt=pot_opt,
            jpot_state=jpot_state, jpot_opt=jpot_opt,
            cpot_state=cpot_state, cpot_opt=cpot_opt,
            lam_s=lam_s, lam_b=lam_b, beam_width=beam_width, context=context)
    except SolveInterrupted as exc:
        return _greedy_fallback(problem, weighting, exc.kind, context)
    if not beam_labels:
        raise RuntimeError("the instance admits no feasible assignment")
    incumbent = _select(beam_labels, weighting)
    incumbent_objective = weighting.combine(
        incumbent[0], max(incumbent[1]) if incumbent[1] else 0.0)
    if context is not None:
        context.report_incumbent(incumbent_objective, source="dp-beam")

    try:
        exact_labels, stats = _dp_labels(
            problem, max_frontier=max_frontier,
            pot_state=pot_state, pot_opt=pot_opt,
            jpot_state=jpot_state, jpot_opt=jpot_opt,
            cpot_state=cpot_state, cpot_opt=cpot_opt,
            bound=incumbent_objective, lam_s=lam_s, lam_b=lam_b,
            context=context, profile=_span_profile(context))
    except SolveInterrupted as exc:
        return _finish(problem, weighting, incumbent, {
            "interrupted": exc.kind,
            "beam_objective": incumbent_objective,
            "beam_confirmed": False,
            "beam_labels_bound_pruned": beam_stats["bound_rejected"],
        })
    if exact_labels:
        best = _select(exact_labels, weighting)
        beaten = weighting.combine(
            best[0], max(best[1]) if best[1] else 0.0) < incumbent_objective
        if not beaten:
            best = incumbent
    else:
        # nothing beat the pre-pass incumbent strictly: it is the optimum
        best, beaten = incumbent, False
    return _finish(problem, weighting, best, {
        "frontier_size": len(exact_labels),
        "peak_frontier": stats["peak_frontier"],
        "labels_dominated": stats["dominated"],
        "labels_evicted": stats["evicted"],
        "labels_bound_pruned": stats["bound_rejected"],
        "beam_objective": incumbent_objective,
        "beam_confirmed": not beaten,
        "beam_labels_bound_pruned": beam_stats["bound_rejected"],
        "profile": _dp_profile(stats),
    })


def _finish(problem: AssignmentProblem, weighting: SSBWeighting,
            best: _Label, extra: Dict[str, object]
            ) -> Tuple[Assignment, Dict[str, object]]:
    host_time, loads, cut = best
    offloaded = [c for c in cut if problem.tree.cru(c).is_processing]
    assignment = Assignment.from_cut(problem, offloaded)
    details: Dict[str, object] = {
        "objective": weighting.combine(host_time,
                                       max(loads) if loads else 0.0),
        "host_time": host_time,
        "max_load": max(loads) if loads else 0.0,
    }
    details.update(extra)
    return assignment, details
