"""Genetic-algorithm heuristic (paper §6 future work).

The paper's conclusion names genetic algorithms (citing Wang et al. 1997) as
the intended approach for the general DAG-to-DAG assignment problem where no
polynomial exact algorithm is expected.  This module provides a GA for the
tree-to-host-satellites case so the heuristic can be calibrated against the
exact algorithms on instances where the optimum is known.

Encoding: one binary gene per *offloadable* processing CRU (a CRU with a
correspondent satellite), meaning "prefer to offload this subtree".  Decoding
walks the tree top-down and cuts at the first node on each branch whose gene
is set (sensors are always cut when reached), which yields a feasible
assignment for every chromosome — no repair step is needed.  Fitness is the
negative end-to-end delay.  Standard uniform crossover, bit-flip mutation,
tournament selection and elitism.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.assignment import Assignment
from repro.core.context import SolveContext
from repro.model.problem import AssignmentProblem


@dataclass
class GAParameters:
    """Hyper-parameters of the genetic search."""

    population_size: int = 40
    generations: int = 60
    crossover_rate: float = 0.9
    mutation_rate: float = 0.05
    tournament_size: int = 3
    elite_count: int = 2

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise ValueError("population_size must be at least 2")
        if self.generations < 1:
            raise ValueError("generations must be at least 1")
        if not 0.0 <= self.crossover_rate <= 1.0:
            raise ValueError("crossover_rate must lie in [0, 1]")
        if not 0.0 <= self.mutation_rate <= 1.0:
            raise ValueError("mutation_rate must lie in [0, 1]")
        if self.tournament_size < 1:
            raise ValueError("tournament_size must be at least 1")
        if self.elite_count < 0 or self.elite_count >= self.population_size:
            raise ValueError("elite_count must be in [0, population_size)")


def _offloadable_crus(problem: AssignmentProblem) -> List[str]:
    """Processing CRUs (excluding the root) that could head an offloaded subtree."""
    out = []
    for cru_id in problem.tree.processing_ids():
        if cru_id == problem.tree.root_id:
            continue
        if problem.correspondent_satellite(cru_id) is not None:
            out.append(cru_id)
    return out


def decode_chromosome(problem: AssignmentProblem, genes: Sequence[int],
                      offloadable: Sequence[str]) -> Assignment:
    """Decode a chromosome into a feasible assignment (top-down first-set cut)."""
    prefer = {cru_id for cru_id, gene in zip(offloadable, genes) if gene}
    tree = problem.tree
    cut: List[str] = []

    def descend(cru_id: str) -> None:
        offloadable_here = problem.correspondent_satellite(cru_id) is not None
        if tree.cru(cru_id).is_sensor:
            cut.append(cru_id)
            return
        if offloadable_here and cru_id in prefer:
            cut.append(cru_id)
            return
        for child in tree.children_ids(cru_id):
            descend(child)

    for child in tree.children_ids(tree.root_id):
        descend(child)
    offloaded = [c for c in cut if tree.cru(c).is_processing]
    return Assignment.from_cut(problem, offloaded)


def genetic_assignment(problem: AssignmentProblem,
                       parameters: Optional[GAParameters] = None,
                       seed: Optional[int] = None,
                       rng: Optional[random.Random] = None,
                       context: Optional[SolveContext] = None,
                       **overrides) -> Tuple[Assignment, Dict[str, object]]:
    """Run the GA and return the best assignment found.

    Randomness comes exclusively from ``rng`` (or a ``random.Random(seed)``
    built here) — never from the shared module-level generator — so runs are
    reproducible and batch sweeps can thread one explicitly seeded stream per
    task.  Keyword overrides (``generations=...``, ``population_size=...``)
    are applied on top of ``parameters`` for convenience.

    Anytime: ``context`` is polled once per generation; on expiry the loop
    stops and the best chromosome evaluated so far is decoded and returned
    with ``details["interrupted"]`` set (the initial population is always
    evaluated, so an answer exists from the first poll on).
    """
    params = parameters or GAParameters()
    if overrides:
        params = GAParameters(**{**params.__dict__, **overrides})
    if rng is None:
        rng = random.Random(seed)

    offloadable = _offloadable_crus(problem)
    n_genes = len(offloadable)

    def random_chromosome() -> List[int]:
        return [rng.randint(0, 1) for _ in range(n_genes)]

    def fitness(chromosome: Sequence[int]) -> float:
        return -decode_chromosome(problem, chromosome, offloadable).end_to_end_delay()

    if n_genes == 0:
        assignment = decode_chromosome(problem, [], offloadable)
        return assignment, {"generations_run": 0, "evaluations": 1,
                            "delay": assignment.end_to_end_delay()}

    population = [random_chromosome() for _ in range(params.population_size)]
    scores = [fitness(c) for c in population]
    evaluations = len(population)
    best_history: List[float] = []
    interrupted: Optional[str] = None
    generations_run = 0
    if context is not None:
        context.report_incumbent(-max(scores), source="genetic")

    def tournament() -> List[int]:
        contenders = rng.sample(range(len(population)), min(params.tournament_size,
                                                            len(population)))
        winner = max(contenders, key=lambda i: scores[i])
        return list(population[winner])

    for _generation in range(params.generations):
        if context is not None:
            interrupted = context.interrupted()
            if interrupted is not None:
                break
        generations_run += 1
        ranked = sorted(range(len(population)), key=lambda i: scores[i], reverse=True)
        next_population = [list(population[i]) for i in ranked[:params.elite_count]]
        while len(next_population) < params.population_size:
            parent_a, parent_b = tournament(), tournament()
            if rng.random() < params.crossover_rate:
                child = [a if rng.random() < 0.5 else b for a, b in zip(parent_a, parent_b)]
            else:
                child = parent_a
            child = [1 - g if rng.random() < params.mutation_rate else g for g in child]
            next_population.append(child)
        population = next_population
        scores = [fitness(c) for c in population]
        evaluations += len(population)
        best_history.append(-max(scores))
        if context is not None:
            context.report_incumbent(-max(scores), source="genetic")

    best_index = max(range(len(population)), key=lambda i: scores[i])
    assignment = decode_chromosome(problem, population[best_index], offloadable)
    details: Dict[str, object] = {
        "generations_run": generations_run,
        "evaluations": evaluations,
        "delay": assignment.end_to_end_delay(),
        "best_history": best_history,
        "genes": n_genes,
    }
    if interrupted is not None:
        details["interrupted"] = interrupted
    return assignment, details
