"""Branch-and-bound solver (paper §6 future work).

The paper's conclusion names branch-and-bound as one of the approaches for
the general assignment problem.  For the tree-to-host-satellites case the
decision space is the set of feasible cuts; this solver explores it with
depth-first branch-and-bound:

* **branching**: process the root's children branch by branch; at every node
  that could be offloaded, branch between *offload the whole subtree here*
  and *keep this node on the host and descend into its children*;
* **bounding**: a partial solution's cost can only grow — the host time
  already committed plus the largest per-satellite load already committed is
  a valid lower bound on every completion — so subtrees whose bound meets
  the incumbent are pruned;
* **incumbent**: the greedy heuristic provides the initial upper bound.

Because the bound is admissible and branching is exhaustive, the solver is
exact; it serves as a third independent optimum oracle in the test-suite.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.baselines.greedy import greedy_assignment
from repro.core.assignment import Assignment
from repro.core.context import SolveContext
from repro.model.problem import AssignmentProblem

#: Explored nodes between two context polls (node bodies are tiny).
_CONTEXT_STRIDE = 256


def branch_and_bound_assignment(problem: AssignmentProblem,
                                use_greedy_incumbent: bool = True,
                                node_limit: Optional[int] = None,
                                context: Optional[SolveContext] = None,
                                **_ignored) -> Tuple[Assignment, Dict[str, object]]:
    """Exact branch-and-bound over feasible cuts.

    Anytime: ``context`` is polled every :data:`_CONTEXT_STRIDE` explored
    nodes; on expiry the exploration stops (like an exhausted node budget)
    and the incumbent — seeded by the greedy heuristic before the first
    branch — is returned with ``details["interrupted"]`` set.
    """
    tree = problem.tree
    satellite_ids = problem.system.satellite_ids()
    sat_index = {sid: i for i, sid in enumerate(satellite_ids)}
    n_sats = len(satellite_ids)

    # Pre-compute, per CRU, the satellite-side cost of offloading its subtree.
    offload_cost: Dict[str, Optional[Tuple[int, float]]] = {}
    for cru_id in tree.cru_ids():
        satellite = problem.correspondent_satellite(cru_id)
        parent = tree.parent_id(cru_id)
        if satellite is None or parent is None:
            offload_cost[cru_id] = None
            continue
        processing = [i for i in tree.subtree_ids(cru_id) if tree.cru(i).is_processing]
        load = sum(problem.satellite_time(i) for i in processing)
        load += problem.comm_cost(cru_id, parent)
        offload_cost[cru_id] = (sat_index[satellite], load)

    # The branches to cover: the root's children (the root is host-bound).
    branches = tree.children_ids(tree.root_id)

    best_cut: Optional[List[str]] = None
    best_value = float("inf")
    if use_greedy_incumbent or context is not None:
        # under a context the greedy incumbent doubles as the guaranteed
        # anytime answer, so it is always seeded
        incumbent, _ = greedy_assignment(problem)
        best_value = incumbent.end_to_end_delay()
        best_cut = incumbent.cut_children()
        if context is not None:
            context.report_incumbent(best_value, source="b&b-greedy-seed")

    explored = 0
    pruned = 0
    limit_hit = False
    interrupted: Optional[str] = None

    # Work list of "pending" nodes still to be covered, processed depth-first.
    def recurse(pending: List[str], host_time: float, loads: List[float],
                cut: List[str]) -> None:
        nonlocal best_cut, best_value, explored, pruned, limit_hit, interrupted
        if limit_hit or interrupted is not None:
            return
        explored += 1
        if node_limit is not None and explored > node_limit:
            limit_hit = True
            return
        if context is not None and explored % _CONTEXT_STRIDE == 0:
            interrupted = context.interrupted()
            if interrupted is not None:
                return

        bound = host_time + (max(loads) if loads else 0.0)
        if bound >= best_value - 1e-12:
            pruned += 1
            return
        if not pending:
            if bound < best_value:
                best_value = bound
                best_cut = list(cut)
                if context is not None:
                    context.report_incumbent(best_value, source="b&b")
            return

        node = pending[0]
        rest = pending[1:]

        # Option 1: offload the whole subtree of `node` (if possible).
        option = offload_cost[node]
        if option is not None:
            idx, load = option
            loads[idx] += load
            cut.append(node)
            recurse(rest, host_time, loads, cut)
            cut.pop()
            loads[idx] -= load

        # Option 2: keep `node` on the host and descend into its children.
        if tree.cru(node).is_processing:
            children = tree.children_ids(node)
            recurse(children + rest, host_time + problem.host_time(node), loads, cut)

    recurse(list(branches), problem.host_time(tree.root_id), [0.0] * n_sats, [])

    if best_cut is None:
        raise RuntimeError("the instance admits no feasible assignment")
    offloaded = [c for c in best_cut if tree.cru(c).is_processing]
    assignment = Assignment.from_cut(problem, offloaded)
    details: Dict[str, object] = {
        "explored": explored,
        "pruned": pruned,
        "delay": assignment.end_to_end_delay(),
        "node_limit_hit": limit_hit,
    }
    if interrupted is not None:
        details["interrupted"] = interrupted
    return assignment, details
