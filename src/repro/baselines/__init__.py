"""Reference solvers and comparison heuristics.

Two **exact references** validate the paper's algorithm:

* :mod:`~repro.baselines.brute_force` enumerates every feasible partition of
  the CRU tree (exponential, only for small instances),
* :mod:`~repro.baselines.pareto_dp` computes, bottom-up on the tree, the
  Pareto frontier of (host time, per-satellite load vector) and is exact for
  realistic instance sizes.

One **objective baseline** reproduces the comparison the paper motivates:

* :mod:`~repro.baselines.bokhari_sb` optimises Bokhari's bottleneck objective
  ``max(host time, max satellite load)`` on identical instances.

And the **heuristics the paper's §6 lists as future work** (useful as
comparison points and for the DAG extension):

* :mod:`~repro.baselines.greedy`, :mod:`~repro.baselines.random_search`,
  :mod:`~repro.baselines.genetic`, :mod:`~repro.baselines.branch_and_bound`.

All entry points share one signature style: they take an
:class:`~repro.model.problem.AssignmentProblem` and return
``(assignment, details_dict)``.
"""

from repro.baselines.brute_force import (
    brute_force_assignment,
    enumerate_assignments,
    count_feasible_assignments,
)
from repro.baselines.pareto_dp import (
    FrontierExplosion,
    pareto_dp_assignment,
    pareto_dp_pruned_assignment,
    pareto_frontier,
)
from repro.baselines.bokhari_sb import bokhari_sb_assignment
from repro.baselines.greedy import greedy_assignment
from repro.baselines.random_search import random_search_assignment, random_assignment
from repro.baselines.genetic import genetic_assignment
from repro.baselines.branch_and_bound import branch_and_bound_assignment

__all__ = [
    "brute_force_assignment",
    "enumerate_assignments",
    "count_feasible_assignments",
    "FrontierExplosion",
    "pareto_dp_assignment",
    "pareto_dp_pruned_assignment",
    "pareto_frontier",
    "bokhari_sb_assignment",
    "greedy_assignment",
    "random_search_assignment",
    "random_assignment",
    "genetic_assignment",
    "branch_and_bound_assignment",
]
