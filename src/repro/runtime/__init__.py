"""Batch-solving runtime.

The runtime layer turns the one-instance-at-a-time solver facade into a
production execution layer for *fleets* of instances:

* :mod:`~repro.runtime.registry` — a declarative **solver registry** mapping
  method names (and their aliases) to callables plus capability/complexity
  metadata.  :func:`repro.core.solver.solve` dispatches through it.
* :mod:`~repro.runtime.cache` — a **result cache** (in-memory LRU, optional
  on-disk JSON store) keyed by a canonical problem hash, so repeated sweeps
  skip instances that were already solved.
* :mod:`~repro.runtime.runner` — a **BatchRunner** that fans instances across
  ``concurrent.futures.ProcessPoolExecutor`` workers with chunking, per-task
  timeouts and explicit RNG seeding for reproducible stochastic baselines.
"""

from repro.runtime.registry import (
    SolverRegistry,
    SolverSpec,
    UnknownSolverError,
    default_registry,
)
from repro.runtime.cache import (
    JSONFileCache,
    LRUResultCache,
    TieredResultCache,
    cache_entry_from_result,
    cache_get_with_source,
    make_cache_entry,
    options_fingerprint,
    problem_fingerprint,
    result_key,
    shard_of,
)
from repro.runtime.payload import (
    PreparedTask,
    prepare_task,
    prepare_tasks,
    solve_payload,
    task_payload,
)
from repro.runtime.runner import (
    BatchReport,
    BatchRunner,
    BatchTask,
    BatchItemResult,
    derive_seed,
    serial_sweep,
)

__all__ = [
    "SolverRegistry",
    "SolverSpec",
    "UnknownSolverError",
    "default_registry",
    "JSONFileCache",
    "LRUResultCache",
    "TieredResultCache",
    "cache_entry_from_result",
    "cache_get_with_source",
    "make_cache_entry",
    "options_fingerprint",
    "problem_fingerprint",
    "result_key",
    "shard_of",
    "PreparedTask",
    "prepare_task",
    "prepare_tasks",
    "solve_payload",
    "task_payload",
    "BatchReport",
    "BatchRunner",
    "BatchTask",
    "BatchItemResult",
    "derive_seed",
    "serial_sweep",
]
