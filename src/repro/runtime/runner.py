"""Parallel batch solving.

:class:`BatchRunner` fans a fleet of :class:`~repro.model.problem.AssignmentProblem`
instances across ``concurrent.futures.ProcessPoolExecutor`` workers:

* instances cross the process boundary as canonical JSON (the same format the
  CLI reads/writes), so workers never depend on picklability of live objects;
* tasks are grouped into **chunks** to amortise IPC overhead, and each chunk
  gets a deadline of ``task_timeout * len(chunk)`` — a chunk that blows its
  deadline is recorded as a per-task ``timeout`` error instead of hanging the
  sweep;
* stochastic methods (per the registry's ``stochastic`` flag) receive an
  **explicitly derived seed** — a stable hash of ``(base_seed, problem hash,
  method, options)`` — so a sweep is reproducible and *order-independent*:
  shuffling the task list cannot change any task's seed or result;
* an optional **result cache** is consulted before dispatch and fed after, so
  a warm repeat of a sweep returns identical objectives without re-solving,
  and duplicate instances inside one batch are solved only once.

``workers=0`` (the default) solves in-process — no pickling, full
:class:`~repro.core.solver.SolverResult` objects preserved — which is what
the experiment drivers use unless ``REPRO_BATCH_WORKERS`` says otherwise.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Union

from repro.core.dwg import SSBWeighting
from repro.model.problem import AssignmentProblem
from repro.observability.metrics import default_metrics
from repro.observability.tracing import Tracer
from repro.runtime.cache import (
    ResultCache,
    cache_entry_from_result,
    cache_get_with_source,
    json_safe_details,
    make_cache_entry,
)
from repro.runtime.payload import (
    PreparedTask,
    derive_seed,
    format_error as _format_error,
    prepare_tasks,
    solve_payload_chunk as _solve_payload_chunk,
    task_payload,
)
from repro.runtime.registry import SolverRegistry, default_registry

WORKERS_ENV_VAR = "REPRO_BATCH_WORKERS"

__all__ = [
    "BatchTask", "BatchItemResult", "BatchReport", "BatchRunner",
    "derive_seed", "serial_sweep",
]


@dataclass
class BatchTask:
    """One unit of work: solve ``problem`` with ``method``."""

    problem: AssignmentProblem
    method: str = "colored-ssb"
    options: Dict[str, Any] = field(default_factory=dict)
    weighting: Optional[SSBWeighting] = None
    seed: Optional[int] = None          #: explicit seed (stochastic methods)
    tag: Optional[str] = None           #: caller-provided identifier
    deadline_s: Optional[float] = None  #: cooperative per-task budget (anytime
                                        #: specs return a feasible incumbent)


@dataclass
class BatchItemResult:
    """Outcome of one task, in input order."""

    index: int
    tag: Optional[str]
    method: str
    key: str
    objective: Optional[float] = None
    elapsed_s: float = 0.0
    cached: bool = False
    cache_source: Optional[str] = None  #: "memory" / "disk" / "batch" (in-batch dup)
    error: Optional[str] = None
    seed: Optional[int] = None
    placement: Optional[Dict[str, str]] = None
    details: Dict[str, Any] = field(default_factory=dict)
    assignment: Optional[Any] = None        #: reconstructed Assignment
    solver_result: Optional[Any] = None     #: full SolverResult (in-process only)
    status: Optional[str] = None            #: optimal/feasible/timeout/cancelled
    incumbent_history: List[Any] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def partial(self) -> bool:
        """A valid but deadline/cancel-interrupted (non-proven) answer."""
        return self.ok and self.details.get("interrupted") is not None


@dataclass
class BatchReport:
    """All task outcomes plus sweep-level accounting.

    ``cache_hits`` counts every task served without running a solver; the
    three ``cache_*_hits`` fields split it by where the entry came from —
    the in-memory tier, the on-disk tier, or an identical task earlier in
    the *same* batch (in-batch dedup fan-out).
    """

    results: List[BatchItemResult]
    wall_s: float
    workers: int
    cache_hits: int
    solved: int
    failed: int
    cache_memory_hits: int = 0
    cache_disk_hits: int = 0
    cache_batch_hits: int = 0

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def objectives(self) -> List[Optional[float]]:
        return [r.objective for r in self.results]

    def summary(self) -> str:
        if self.cache_hits:
            # hits from stores that cannot report their tier (plain get/put
            # caches) are in the total but none of the three buckets
            other = self.cache_hits - (self.cache_memory_hits
                                       + self.cache_disk_hits
                                       + self.cache_batch_hits)
            split = (f"{self.cache_memory_hits} memory, "
                     f"{self.cache_disk_hits} disk, "
                     f"{self.cache_batch_hits} batch-dedup")
            if other > 0:
                split += f", {other} untiered"
            cached = f"{self.cache_hits} cached ({split})"
        else:
            cached = "0 cached"
        return (f"{len(self.results)} tasks in {self.wall_s:.3f}s "
                f"({self.workers} workers): {self.solved} solved, "
                f"{cached}, {self.failed} failed")


# -------------------------------------------------------------------- runner
class BatchRunner:
    """Fan assignment problems across processes, with caching and seeding.

    Parameters
    ----------
    workers:
        Number of worker processes.  ``0`` solves in-process (serial);
        ``>= 1`` uses a process pool of that size; ``None`` reads the
        ``REPRO_BATCH_WORKERS`` environment variable and falls back to
        serial.
    chunk_size:
        Tasks per inter-process message.  Default: enough chunks for ~4
        rounds per worker.
    task_timeout:
        Per-task budget in seconds.  For specs flagged ``supports_deadline``
        (every exact engine and heuristic except ``sb-bottleneck`` and the
        DAG-relaxation bridges) this becomes a **cooperative deadline**: the
        solver observes it at iteration granularity and returns its best
        incumbent as a ``feasible`` result — no worker is killed, no pool is
        respawned, and it works on the in-process serial path too.  Specs
        without the flag fall back to the historical **hard-kill** path
        (``multiprocessing.Pool`` with a chunk deadline of ``task_timeout *
        len(chunk)``, timed-out tasks reported as errors), which requires
        process workers; pool startup and queue wait count toward the first
        chunks' deadlines there.
    cache:
        Optional :class:`~repro.runtime.cache.ResultCache`; consulted before
        dispatch, fed after every successful solve.
    registry:
        Solver registry (default: the process-wide default registry).
    base_seed:
        When set, every stochastic task without an explicit seed receives a
        seed derived from ``(base_seed, problem hash, method, options)``.
    validate:
        Forwarded to :func:`repro.core.solver.solve`.
    tracer:
        Optional :class:`~repro.observability.tracing.Tracer`.  When set
        (and enabled), every dispatched task gets a root span whose context
        rides inside the payload, so pool children continue the submitter's
        trace; serial solves attach the span to their cooperative context
        directly.
    """

    def __init__(self,
                 workers: Optional[int] = None,
                 chunk_size: Optional[int] = None,
                 task_timeout: Optional[float] = None,
                 cache: Optional[ResultCache] = None,
                 registry: Optional[SolverRegistry] = None,
                 base_seed: Optional[int] = None,
                 validate: bool = True,
                 tracer: Optional[Tracer] = None) -> None:
        if workers is None:
            workers = int(os.environ.get(WORKERS_ENV_VAR, "0") or "0")
        if workers < 0:
            raise ValueError("workers must be >= 0")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        if task_timeout is not None and task_timeout <= 0:
            raise ValueError("task_timeout must be positive")
        self.workers = workers
        self.chunk_size = chunk_size
        self.task_timeout = task_timeout
        self.cache = cache
        self.registry = registry if registry is not None else default_registry()
        self.base_seed = base_seed
        self.validate = validate
        self.tracer = tracer

    def _root_span(self, prep: PreparedTask, name: str = "task"):
        if self.tracer is None or not self.tracer.enabled:
            return None
        return self.tracer.root(name, problem_hash=prep.key,
                                method=prep.spec.name, tag=prep.task.tag)

    # ------------------------------------------------------------- frontend
    def solve_many(self,
                   problems: Iterable[AssignmentProblem],
                   method: str = "colored-ssb",
                   weighting: Optional[SSBWeighting] = None,
                   seeds: Optional[Sequence[Optional[int]]] = None,
                   deadline_s: Optional[float] = None,
                   **options: Any) -> BatchReport:
        """Solve every problem with one method (the common sweep shape)."""
        problems = list(problems)
        if seeds is not None and len(seeds) != len(problems):
            raise ValueError("seeds must match problems one-to-one")
        tasks = [
            BatchTask(problem=problem, method=method, options=dict(options),
                      weighting=weighting,
                      seed=None if seeds is None else seeds[i],
                      tag=problem.name,
                      deadline_s=deadline_s)
            for i, problem in enumerate(problems)
        ]
        return self.run(tasks)

    def run(self, tasks: Sequence[Union[BatchTask, AssignmentProblem]]) -> BatchReport:
        """Execute a batch and return per-task results in input order."""
        started = time.perf_counter()
        normalized = [task if isinstance(task, BatchTask) else BatchTask(problem=task)
                      for task in tasks]

        prepared = prepare_tasks(normalized, self.registry, self.base_seed)
        # fold the runner-wide budget into every deadline-capable task: the
        # effective budget is the tighter of task_timeout and the task's own
        # deadline_s, so a loose per-task value can never bypass the runner
        # cap; non-capable specs keep deadline_s as-is and are covered by
        # the hard-kill fallback instead
        if self.task_timeout is not None:
            for prep in prepared:
                if prep.spec.supports_deadline:
                    prep.deadline_s = (self.task_timeout
                                       if prep.deadline_s is None
                                       else min(prep.deadline_s,
                                                self.task_timeout))
        items = [BatchItemResult(index=index, tag=prep.task.tag,
                                 method=prep.spec.name, key=prep.key,
                                 seed=prep.seed)
                 for index, prep in enumerate(prepared)]

        # ------------------------------------------------------- cache probe
        pending: List[int] = []
        for index, prep in enumerate(prepared):
            entry = source = None
            if self.cache is not None and prep.cacheable:
                entry, source = cache_get_with_source(self.cache, prep.key)
            if entry is not None:
                self._apply_entry(items[index], prep, entry, cached=True)
                items[index].cache_source = source
            else:
                pending.append(index)

        # Deduplicate identical keys inside the batch: solve once, fan out.
        # The fan-out copies count as cache hits (source "batch"): once the
        # first occurrence warms the cache, its duplicates are served from it.
        by_key: Dict[str, List[int]] = {}
        for index in pending:
            by_key.setdefault(prepared[index].key, []).append(index)
        unique_indices = [indices[0] for indices in by_key.values()]

        if unique_indices:
            if self.workers == 0:
                outcomes = self._run_serial(unique_indices, prepared)
            else:
                outcomes = self._run_parallel(unique_indices, prepared)
            for key, outcome in outcomes.items():
                for position, index in enumerate(by_key[key]):
                    self._apply_outcome(items[index], prepared[index], outcome)
                    if position > 0 and items[index].ok:
                        items[index].cached = True
                        items[index].cache_source = "batch"

        solved = sum(1 for item in items if item.ok and not item.cached)
        failed = sum(1 for item in items if not item.ok)
        by_source = {"memory": 0, "disk": 0, "batch": 0}
        for item in items:
            if item.cached:
                by_source[item.cache_source or "memory"] = \
                    by_source.get(item.cache_source or "memory", 0) + 1
        metrics = default_metrics()
        tasks_total = metrics.counter(
            "repro_batch_tasks_total",
            "Batch tasks by final status (solved/cached/failed)")
        tasks_total.inc(solved, status="solved")
        tasks_total.inc(sum(1 for item in items if item.cached),
                        status="cached")
        tasks_total.inc(failed, status="failed")
        metrics.histogram(
            "repro_batch_wall_seconds",
            "Wall-clock seconds per BatchRunner.run call").observe(
            time.perf_counter() - started)
        return BatchReport(results=items,
                           wall_s=time.perf_counter() - started,
                           workers=self.workers,
                           cache_hits=sum(1 for item in items if item.cached),
                           solved=solved,
                           failed=failed,
                           cache_memory_hits=by_source["memory"],
                           cache_disk_hits=by_source["disk"],
                           cache_batch_hits=by_source["batch"])

    # ------------------------------------------------------------- backends
    def _run_serial(self, indices: List[int],
                    prepared: List[PreparedTask]) -> Dict[str, Any]:
        from repro.core.context import SolveContext

        default_metrics().counter(
            "repro_batch_lane_total",
            "Batch tasks routed per dispatch lane").inc(
            len(indices), lane="serial")
        outcomes: Dict[str, Any] = {}
        for index in indices:
            prep = prepared[index]
            task: BatchTask = prep.task
            if ((self.task_timeout is not None or prep.deadline_s is not None)
                    and not prep.spec.supports_deadline):
                # the serial path cannot hard-kill a running solver, and the
                # spec cannot observe a cooperative deadline either: flag it
                # instead of silently running unbounded
                outcomes[prep.key] = {
                    "ok": False,
                    "error": f"timeout: method {prep.spec.name!r} does not "
                             f"support cooperative deadlines; the hard-kill "
                             f"fallback requires process workers "
                             f"(workers >= 1)",
                }
                continue
            context = (SolveContext(deadline_s=prep.deadline_s)
                       if prep.deadline_s is not None else None)
            span = self._root_span(prep, name="solve")
            if span is not None:
                if context is None:
                    context = SolveContext()
                context.span = span
            try:
                if self.validate:
                    task.problem.validate()
                result = prep.spec.solve(task.problem, weighting=task.weighting,
                                         context=context, **prep.options)
                outcomes[prep.key] = result
                if span is not None:
                    span.finish(status=getattr(result, "status", None),
                                objective=getattr(result, "objective", None))
            except Exception as exc:  # noqa: BLE001 - batch keeps going
                if span is not None:
                    span.finish(error=_format_error(exc))
                outcomes[prep.key] = {"ok": False, "error": _format_error(exc)}
        return outcomes

    @staticmethod
    def _cooperative(prep: PreparedTask) -> bool:
        return prep.spec.supports_deadline

    def _run_parallel(self, indices: List[int],
                      prepared: List[PreparedTask]) -> Dict[str, Any]:
        """Fan out over processes.

        Deadline-capable tasks carry their budget *inside* the payload (the
        worker builds a cooperative context; the pool is a plain
        ``ProcessPoolExecutor`` that is never killed).  Only budgeted tasks
        whose spec lacks ``supports_deadline`` — whether the budget came
        from ``task_timeout`` or a per-task ``deadline_s`` — go through the
        hard-kill ``multiprocessing.Pool`` fallback, so the two timeout
        mechanisms can never double-fire on the same task and a user-set
        deadline is never silently dropped.
        """
        cooperative: List[Dict[str, Any]] = []
        hard_kill: List[Dict[str, Any]] = []
        spans: Dict[str, Any] = {}
        for index in indices:
            prep = prepared[index]
            trace = None
            span = self._root_span(prep)
            if span is not None:
                spans[prep.key] = span
                trace = span.context()
            payload = task_payload(prep, validate=self.validate, trace=trace)
            if self._cooperative(prep):
                cooperative.append(payload)
            elif self.task_timeout is not None or prep.deadline_s is not None:
                hard_kill.append(payload)
            else:
                cooperative.append(payload)     # unbudgeted: plain executor

        lane_total = default_metrics().counter(
            "repro_batch_lane_total", "Batch tasks routed per dispatch lane")
        outcomes: Dict[str, Any] = {}
        if cooperative:
            lane_total.inc(len(cooperative), lane="cooperative")
            outcomes.update(self._collect_executor(
                self._chunked(cooperative)))
        if hard_kill:
            lane_total.inc(len(hard_kill), lane="hard_kill")
            outcomes.update(self._collect_pool_with_deadlines(
                self._chunked(hard_kill)))
        for key, span in spans.items():
            outcome = outcomes.get(key)
            if isinstance(outcome, Mapping):
                span.finish(status=outcome.get("status"),
                            ok=outcome.get("ok"),
                            objective=outcome.get("objective"))
            else:
                span.finish()
        return outcomes

    def _chunked(self, payloads: List[Dict[str, Any]]
                 ) -> List[List[Dict[str, Any]]]:
        chunk_size = self.chunk_size
        if chunk_size is None:
            chunk_size = max(1, math.ceil(len(payloads) / (self.workers * 4)))
        return [payloads[i:i + chunk_size]
                for i in range(0, len(payloads), chunk_size)]

    def _collect_executor(self, chunks: List[List[Dict[str, Any]]]
                          ) -> Dict[str, Any]:
        """No deadlines: ProcessPoolExecutor (detects dead workers)."""
        outcomes: Dict[str, Any] = {}
        with ProcessPoolExecutor(max_workers=self.workers) as executor:
            futures = [(executor.submit(_solve_payload_chunk, chunk), chunk)
                       for chunk in chunks]
            for future, chunk in futures:
                try:
                    for outcome in future.result():
                        outcomes[outcome["key"]] = outcome
                except Exception as exc:  # noqa: BLE001 - e.g. broken pool
                    for payload in chunk:
                        outcomes.setdefault(payload["key"], {
                            "ok": False,
                            "error": _format_error(exc),
                        })
        return outcomes

    def _collect_pool_with_deadlines(self, chunks: List[List[Dict[str, Any]]]
                                     ) -> Dict[str, Any]:
        """With deadlines: multiprocessing.Pool, whose ``terminate()`` can
        hard-kill workers still grinding on a timed-out task."""
        outcomes: Dict[str, Any] = {}
        timed_out = False
        pool = multiprocessing.get_context().Pool(processes=self.workers)
        try:
            async_results = [(pool.apply_async(_solve_payload_chunk, (chunk,)),
                              chunk) for chunk in chunks]
            for async_result, chunk in async_results:
                # After one chunk blows its deadline the pool is going to be
                # terminated anyway, so later chunks only get a token wait:
                # finished results are still collected, everything else is
                # flagged instead of serially burning one deadline per chunk.
                # A task's budget is the tighter of its own deadline_s and
                # the runner-wide task_timeout (every payload routed here
                # has at least one of the two; 0.0 is a valid budget, so
                # None-ness, not falsiness, picks the fallback) — a loose
                # per-task value must not bypass the runner cap here any
                # more than on the cooperative path.
                per_task = [
                    self.task_timeout if payload.get("deadline_s") is None
                    else payload["deadline_s"] if self.task_timeout is None
                    else min(payload["deadline_s"], self.task_timeout)
                    for payload in chunk]
                deadline = 0.05 if timed_out else sum(per_task)
                try:
                    for outcome in async_result.get(timeout=deadline):
                        outcomes[outcome["key"]] = outcome
                except multiprocessing.TimeoutError:
                    message = (f"timeout: batch aborted after an earlier chunk "
                               f"exceeded its deadline" if timed_out else
                               f"timeout: chunk exceeded {deadline:.3g}s "
                               f"({min(per_task):.3g}-{max(per_task):.3g}s/task)")
                    timed_out = True
                    for payload in chunk:
                        outcomes.setdefault(payload["key"], {
                            "ok": False,
                            "error": message,
                        })
                except Exception as exc:  # noqa: BLE001 - keep the batch going
                    for payload in chunk:
                        outcomes.setdefault(payload["key"], {
                            "ok": False,
                            "error": _format_error(exc),
                        })
        finally:
            if timed_out:
                pool.terminate()
            else:
                pool.close()
            pool.join()
        return outcomes

    # ------------------------------------------------------------ result fan
    def _apply_entry(self, item: BatchItemResult, prep: PreparedTask,
                     entry: Mapping[str, Any], cached: bool) -> None:
        from repro.core.assignment import Assignment

        task: BatchTask = prep.task
        item.cached = cached
        item.objective = entry.get("objective")
        item.elapsed_s = entry.get("elapsed_s", 0.0)
        item.placement = dict(entry.get("placement") or {})
        item.details = dict(entry.get("details") or {})
        item.status = entry.get("status") or item.status
        item.incumbent_history = list(entry.get("incumbent_history") or ())
        if item.placement:
            item.assignment = Assignment(problem=task.problem,
                                         placement=item.placement)

    def _apply_outcome(self, item: BatchItemResult, prep: PreparedTask,
                       outcome: Any) -> None:
        from repro.runtime.payload import outcome_cacheable

        # outcome is either a SolverResult (serial path) or a worker dict
        if isinstance(outcome, dict):
            if not outcome.get("ok", False):
                item.error = outcome.get("error", "unknown error")
                item.status = outcome.get("status") or item.status
                return
            self._apply_entry(item, prep, outcome, cached=False)
            if (self.cache is not None and prep.cacheable
                    and outcome_cacheable(outcome)):
                self.cache.put(prep.key, make_cache_entry(
                    item.method, item.objective, item.elapsed_s,
                    item.placement, item.details, status=item.status))
            return
        result = outcome
        item.objective = result.objective
        item.elapsed_s = result.elapsed_s
        item.status = result.status
        item.incumbent_history = [[round(t, 6), obj, src]
                                  for t, obj, src in result.incumbent_history]
        if result.assignment is None:
            # the context fired before any incumbent existed
            item.error = (f"{result.status}: the context fired before any "
                          f"feasible incumbent existed")
            return
        item.placement = dict(result.assignment.placement)
        item.details = json_safe_details(result.details)
        item.assignment = result.assignment
        item.solver_result = result
        if (self.cache is not None and prep.cacheable
                and result.interrupted is None):
            self.cache.put(prep.key, cache_entry_from_result(result))


# ------------------------------------------------------------------ helpers
def serial_sweep(problems: Iterable[AssignmentProblem],
                 method: str = "colored-ssb",
                 weighting: Optional[SSBWeighting] = None,
                 **options: Any) -> List[Any]:
    """Plain serial loop over :func:`repro.core.solver.solve`.

    The baseline the BatchRunner's speedup is measured against (and a
    convenient escape hatch when process pools are unavailable).
    """
    from repro.core.solver import solve

    return [solve(problem, method=method, weighting=weighting, **options)
            for problem in problems]
