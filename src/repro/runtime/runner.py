"""Parallel batch solving.

:class:`BatchRunner` fans a fleet of :class:`~repro.model.problem.AssignmentProblem`
instances across ``concurrent.futures.ProcessPoolExecutor`` workers:

* instances cross the process boundary as canonical JSON (the same format the
  CLI reads/writes), so workers never depend on picklability of live objects;
* tasks are grouped into **chunks** to amortise IPC overhead, and each chunk
  gets a deadline of ``task_timeout * len(chunk)`` — a chunk that blows its
  deadline is recorded as a per-task ``timeout`` error instead of hanging the
  sweep;
* stochastic methods (per the registry's ``stochastic`` flag) receive an
  **explicitly derived seed** — a stable hash of ``(base_seed, problem hash,
  method, options)`` — so a sweep is reproducible and *order-independent*:
  shuffling the task list cannot change any task's seed or result;
* an optional **result cache** is consulted before dispatch and fed after, so
  a warm repeat of a sweep returns identical objectives without re-solving,
  and duplicate instances inside one batch are solved only once.

``workers=0`` (the default) solves in-process — no pickling, full
:class:`~repro.core.solver.SolverResult` objects preserved — which is what
the experiment drivers use unless ``REPRO_BATCH_WORKERS`` says otherwise.
"""

from __future__ import annotations

import hashlib
import math
import multiprocessing
import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Union

from repro.core.dwg import SSBWeighting
from repro.model.problem import AssignmentProblem
from repro.model.serialization import problem_from_json, problem_to_json
from repro.runtime.cache import (
    ResultCache,
    cache_entry_from_result,
    json_safe_details,
    make_cache_entry,
    problem_fingerprint,
    result_key,
)
from repro.runtime.registry import SolverRegistry, default_registry

WORKERS_ENV_VAR = "REPRO_BATCH_WORKERS"


def _format_error(exc: BaseException) -> str:
    """One-line error text carried in results instead of raising."""
    return "".join(traceback.format_exception_only(type(exc), exc)).strip()


def derive_seed(base_seed: int, *parts: Any) -> int:
    """A stable 63-bit seed derived from ``base_seed`` and identifying parts.

    Deterministic across processes and runs (unlike ``hash()``), and
    independent of task submission order.
    """
    text = ":".join([str(base_seed), *map(str, parts)])
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


@dataclass
class BatchTask:
    """One unit of work: solve ``problem`` with ``method``."""

    problem: AssignmentProblem
    method: str = "colored-ssb"
    options: Dict[str, Any] = field(default_factory=dict)
    weighting: Optional[SSBWeighting] = None
    seed: Optional[int] = None          #: explicit seed (stochastic methods)
    tag: Optional[str] = None           #: caller-provided identifier


@dataclass
class BatchItemResult:
    """Outcome of one task, in input order."""

    index: int
    tag: Optional[str]
    method: str
    key: str
    objective: Optional[float] = None
    elapsed_s: float = 0.0
    cached: bool = False
    error: Optional[str] = None
    seed: Optional[int] = None
    placement: Optional[Dict[str, str]] = None
    details: Dict[str, Any] = field(default_factory=dict)
    assignment: Optional[Any] = None        #: reconstructed Assignment
    solver_result: Optional[Any] = None     #: full SolverResult (in-process only)

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class BatchReport:
    """All task outcomes plus sweep-level accounting."""

    results: List[BatchItemResult]
    wall_s: float
    workers: int
    cache_hits: int
    solved: int
    failed: int

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def objectives(self) -> List[Optional[float]]:
        return [r.objective for r in self.results]

    def summary(self) -> str:
        return (f"{len(self.results)} tasks in {self.wall_s:.3f}s "
                f"({self.workers} workers): {self.solved} solved, "
                f"{self.cache_hits} cached, {self.failed} failed")


# ----------------------------------------------------------------- worker fn
def _solve_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Solve one JSON-encoded task; never raises (errors are data)."""
    from repro.core.solver import solve

    try:
        problem = problem_from_json(payload["problem_json"])
        weighting = payload.get("weighting")
        if weighting is not None:
            weighting = SSBWeighting(*weighting)
        started = time.perf_counter()
        result = solve(problem, method=payload["method"], weighting=weighting,
                       validate=payload.get("validate", True),
                       **payload.get("options", {}))
        elapsed = time.perf_counter() - started
        return {
            "key": payload["key"],
            "ok": True,
            "method": result.method,
            "objective": result.objective,
            "elapsed_s": elapsed,
            "placement": dict(result.assignment.placement),
            "details": json_safe_details(result.details),
        }
    except Exception as exc:  # noqa: BLE001 - worker must report, not crash
        return {
            "key": payload["key"],
            "ok": False,
            "error": _format_error(exc),
        }


def _solve_payload_chunk(chunk: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    return [_solve_payload(payload) for payload in chunk]


# -------------------------------------------------------------------- runner
class BatchRunner:
    """Fan assignment problems across processes, with caching and seeding.

    Parameters
    ----------
    workers:
        Number of worker processes.  ``0`` solves in-process (serial);
        ``>= 1`` uses a process pool of that size; ``None`` reads the
        ``REPRO_BATCH_WORKERS`` environment variable and falls back to
        serial.
    chunk_size:
        Tasks per inter-process message.  Default: enough chunks for ~4
        rounds per worker.
    task_timeout:
        Per-task budget in seconds; a chunk's deadline is the sum over its
        tasks.  Timed-out tasks are reported as errors, not exceptions.
        Requires process workers (``workers >= 1``) — the in-process serial
        path has no way to interrupt a running solver.  Worker-pool startup
        and queue wait count toward the first chunks' deadlines, so budgets
        well below a second will flag tasks that never got to run.
    cache:
        Optional :class:`~repro.runtime.cache.ResultCache`; consulted before
        dispatch, fed after every successful solve.
    registry:
        Solver registry (default: the process-wide default registry).
    base_seed:
        When set, every stochastic task without an explicit seed receives a
        seed derived from ``(base_seed, problem hash, method, options)``.
    validate:
        Forwarded to :func:`repro.core.solver.solve`.
    """

    def __init__(self,
                 workers: Optional[int] = None,
                 chunk_size: Optional[int] = None,
                 task_timeout: Optional[float] = None,
                 cache: Optional[ResultCache] = None,
                 registry: Optional[SolverRegistry] = None,
                 base_seed: Optional[int] = None,
                 validate: bool = True) -> None:
        if workers is None:
            workers = int(os.environ.get(WORKERS_ENV_VAR, "0") or "0")
        if workers < 0:
            raise ValueError("workers must be >= 0")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        if task_timeout is not None and task_timeout <= 0:
            raise ValueError("task_timeout must be positive")
        if task_timeout is not None and workers == 0:
            raise ValueError("task_timeout requires process workers (workers >= 1); "
                             "the in-process serial path cannot interrupt a solver")
        self.workers = workers
        self.chunk_size = chunk_size
        self.task_timeout = task_timeout
        self.cache = cache
        self.registry = registry if registry is not None else default_registry()
        self.base_seed = base_seed
        self.validate = validate

    # ------------------------------------------------------------- frontend
    def solve_many(self,
                   problems: Iterable[AssignmentProblem],
                   method: str = "colored-ssb",
                   weighting: Optional[SSBWeighting] = None,
                   seeds: Optional[Sequence[Optional[int]]] = None,
                   **options: Any) -> BatchReport:
        """Solve every problem with one method (the common sweep shape)."""
        problems = list(problems)
        if seeds is not None and len(seeds) != len(problems):
            raise ValueError("seeds must match problems one-to-one")
        tasks = [
            BatchTask(problem=problem, method=method, options=dict(options),
                      weighting=weighting,
                      seed=None if seeds is None else seeds[i],
                      tag=problem.name)
            for i, problem in enumerate(problems)
        ]
        return self.run(tasks)

    def run(self, tasks: Sequence[Union[BatchTask, AssignmentProblem]]) -> BatchReport:
        """Execute a batch and return per-task results in input order."""
        started = time.perf_counter()
        normalized = [task if isinstance(task, BatchTask) else BatchTask(problem=task)
                      for task in tasks]

        items: List[BatchItemResult] = []
        prepared: List[Dict[str, Any]] = []     # one per task, aligned with items
        for index, task in enumerate(normalized):
            spec = self.registry.resolve(task.method)
            options = dict(task.options)
            seed = task.seed
            if spec.stochastic:
                if seed is None:
                    seed = options.get("seed")
                problem_hash = problem_fingerprint(task.problem)
                if seed is None and self.base_seed is not None:
                    seed = derive_seed(self.base_seed, problem_hash, spec.name,
                                       sorted(options.items()))
                if seed is not None:
                    options["seed"] = seed
            else:
                problem_hash = problem_fingerprint(task.problem)
            key = result_key(task.problem, spec.name, options=options,
                             weighting=task.weighting, problem_hash=problem_hash)
            # A stochastic task without a seed is a fresh independent draw:
            # it must not collapse into another task's result via dedup, and
            # its result must not be replayed from the cache.
            cacheable = not (spec.stochastic and options.get("seed") is None)
            if not cacheable:
                key = f"{key}#draw{index}"
            items.append(BatchItemResult(index=index, tag=task.tag, method=spec.name,
                                         key=key, seed=seed))
            prepared.append({
                "task": task,
                "spec": spec,
                "options": options,
                "key": key,
                "cacheable": cacheable,
            })

        # ------------------------------------------------------- cache probe
        cache_hits = 0
        pending: List[int] = []
        for index, prep in enumerate(prepared):
            entry = (self.cache.get(prep["key"])
                     if self.cache is not None and prep["cacheable"] else None)
            if entry is not None:
                self._apply_entry(items[index], prep, entry, cached=True)
                cache_hits += 1
            else:
                pending.append(index)

        # Deduplicate identical keys inside the batch: solve once, fan out.
        by_key: Dict[str, List[int]] = {}
        for index in pending:
            by_key.setdefault(prepared[index]["key"], []).append(index)
        unique_indices = [indices[0] for indices in by_key.values()]

        if unique_indices:
            if self.workers == 0:
                outcomes = self._run_serial(unique_indices, prepared)
            else:
                outcomes = self._run_parallel(unique_indices, prepared)
            for key, outcome in outcomes.items():
                for index in by_key[key]:
                    self._apply_outcome(items[index], prepared[index], outcome)

        solved = sum(1 for item in items if item.ok and not item.cached)
        failed = sum(1 for item in items if not item.ok)
        return BatchReport(results=items,
                           wall_s=time.perf_counter() - started,
                           workers=self.workers,
                           cache_hits=cache_hits,
                           solved=solved,
                           failed=failed)

    # ------------------------------------------------------------- backends
    def _run_serial(self, indices: List[int],
                    prepared: List[Dict[str, Any]]) -> Dict[str, Any]:
        outcomes: Dict[str, Any] = {}
        for index in indices:
            prep = prepared[index]
            task: BatchTask = prep["task"]
            try:
                if self.validate:
                    task.problem.validate()
                result = prep["spec"].solve(task.problem, weighting=task.weighting,
                                            **prep["options"])
                outcomes[prep["key"]] = result
            except Exception as exc:  # noqa: BLE001 - batch keeps going
                outcomes[prep["key"]] = {"ok": False, "error": _format_error(exc)}
        return outcomes

    def _run_parallel(self, indices: List[int],
                      prepared: List[Dict[str, Any]]) -> Dict[str, Any]:
        payloads = []
        for index in indices:
            prep = prepared[index]
            task: BatchTask = prep["task"]
            payloads.append({
                "key": prep["key"],
                "problem_json": problem_to_json(task.problem, indent=0),
                "method": prep["spec"].name,
                "options": prep["options"],
                "weighting": (None if task.weighting is None else
                              [task.weighting.lambda_s, task.weighting.lambda_b]),
                "validate": self.validate,
            })

        chunk_size = self.chunk_size
        if chunk_size is None:
            chunk_size = max(1, math.ceil(len(payloads) / (self.workers * 4)))
        chunks = [payloads[i:i + chunk_size]
                  for i in range(0, len(payloads), chunk_size)]
        if self.task_timeout is None:
            return self._collect_executor(chunks)
        return self._collect_pool_with_deadlines(chunks)

    def _collect_executor(self, chunks: List[List[Dict[str, Any]]]
                          ) -> Dict[str, Any]:
        """No deadlines: ProcessPoolExecutor (detects dead workers)."""
        outcomes: Dict[str, Any] = {}
        with ProcessPoolExecutor(max_workers=self.workers) as executor:
            futures = [(executor.submit(_solve_payload_chunk, chunk), chunk)
                       for chunk in chunks]
            for future, chunk in futures:
                try:
                    for outcome in future.result():
                        outcomes[outcome["key"]] = outcome
                except Exception as exc:  # noqa: BLE001 - e.g. broken pool
                    for payload in chunk:
                        outcomes.setdefault(payload["key"], {
                            "ok": False,
                            "error": _format_error(exc),
                        })
        return outcomes

    def _collect_pool_with_deadlines(self, chunks: List[List[Dict[str, Any]]]
                                     ) -> Dict[str, Any]:
        """With deadlines: multiprocessing.Pool, whose ``terminate()`` can
        hard-kill workers still grinding on a timed-out task."""
        outcomes: Dict[str, Any] = {}
        timed_out = False
        pool = multiprocessing.get_context().Pool(processes=self.workers)
        try:
            async_results = [(pool.apply_async(_solve_payload_chunk, (chunk,)),
                              chunk) for chunk in chunks]
            for async_result, chunk in async_results:
                # After one chunk blows its deadline the pool is going to be
                # terminated anyway, so later chunks only get a token wait:
                # finished results are still collected, everything else is
                # flagged instead of serially burning one deadline per chunk.
                deadline = (0.05 if timed_out
                            else self.task_timeout * len(chunk))
                try:
                    for outcome in async_result.get(timeout=deadline):
                        outcomes[outcome["key"]] = outcome
                except multiprocessing.TimeoutError:
                    message = (f"timeout: batch aborted after an earlier chunk "
                               f"exceeded its deadline" if timed_out else
                               f"timeout: chunk exceeded {deadline:.3g}s "
                               f"({self.task_timeout:.3g}s/task)")
                    timed_out = True
                    for payload in chunk:
                        outcomes.setdefault(payload["key"], {
                            "ok": False,
                            "error": message,
                        })
                except Exception as exc:  # noqa: BLE001 - keep the batch going
                    for payload in chunk:
                        outcomes.setdefault(payload["key"], {
                            "ok": False,
                            "error": _format_error(exc),
                        })
        finally:
            if timed_out:
                pool.terminate()
            else:
                pool.close()
            pool.join()
        return outcomes

    # ------------------------------------------------------------ result fan
    def _apply_entry(self, item: BatchItemResult, prep: Dict[str, Any],
                     entry: Mapping[str, Any], cached: bool) -> None:
        from repro.core.assignment import Assignment

        task: BatchTask = prep["task"]
        item.cached = cached
        item.objective = entry.get("objective")
        item.elapsed_s = entry.get("elapsed_s", 0.0)
        item.placement = dict(entry.get("placement") or {})
        item.details = dict(entry.get("details") or {})
        if item.placement:
            item.assignment = Assignment(problem=task.problem,
                                         placement=item.placement)

    def _apply_outcome(self, item: BatchItemResult, prep: Dict[str, Any],
                       outcome: Any) -> None:
        # outcome is either a SolverResult (serial path) or a worker dict
        if isinstance(outcome, dict):
            if not outcome.get("ok", False):
                item.error = outcome.get("error", "unknown error")
                return
            self._apply_entry(item, prep, outcome, cached=False)
            if self.cache is not None and prep["cacheable"]:
                self.cache.put(prep["key"], make_cache_entry(
                    item.method, item.objective, item.elapsed_s,
                    item.placement, item.details))
            return
        result = outcome
        item.objective = result.objective
        item.elapsed_s = result.elapsed_s
        item.placement = dict(result.assignment.placement)
        item.details = json_safe_details(result.details)
        item.assignment = result.assignment
        item.solver_result = result
        if self.cache is not None and prep["cacheable"]:
            self.cache.put(prep["key"], cache_entry_from_result(result))


# ------------------------------------------------------------------ helpers
def serial_sweep(problems: Iterable[AssignmentProblem],
                 method: str = "colored-ssb",
                 weighting: Optional[SSBWeighting] = None,
                 **options: Any) -> List[Any]:
    """Plain serial loop over :func:`repro.core.solver.solve`.

    The baseline the BatchRunner's speedup is measured against (and a
    convenient escape hatch when process pools are unavailable).
    """
    from repro.core.solver import solve

    return [solve(problem, method=method, weighting=weighting, **options)
            for problem in problems]
