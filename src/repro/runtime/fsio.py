"""Filesystem indirection and retry policy for the durable stores.

Everything the spool, the on-disk result cache, the event log and the cache
janitor do to disk goes through a :class:`FilesystemAdapter` — a thin
passthrough over :mod:`os` in production (the default, module-singleton
adapter adds one bound-method call per operation and nothing else), and the
seam where the chaos harness's :class:`~repro.distributed.faults.FaultyFS`
injects deterministic ENOSPC/EIO/torn-write faults in tests.

:class:`RetryPolicy` is the shared answer to *transient* I/O failure: capped
exponential backoff with deterministic jitter (seeded per operation, so two
runs of the same plan back off identically) and per-operation attempt
budgets.  Only errnos that plausibly clear on their own are retried —
``EIO``, ``ENOSPC``, ``EAGAIN``, ``ESTALE``, ``EBUSY``; semantic errors like
``ENOENT``/``EEXIST`` (a lost claim race) propagate immediately.
"""

from __future__ import annotations

import errno
import json
import os
import random
import tempfile
import time
from typing import Any, Callable, Dict, List, Optional

__all__ = ["FilesystemAdapter", "RetryPolicy", "default_fs"]


class FilesystemAdapter:
    """Passthrough filesystem primitives; subclass to intercept.

    The surface is exactly what the durable stores need — nothing here is a
    general filesystem API.  Methods mirror :mod:`os` semantics (including
    raised ``OSError`` subclasses) so callers keep their existing error
    handling whether or not an adapter is in the path.
    """

    # ----------------------------------------------------------- metadata ops
    def listdir(self, path: str) -> List[str]:
        return os.listdir(path)

    def stat(self, path: str) -> os.stat_result:
        return os.stat(path)

    def exists(self, path: str) -> bool:
        return os.path.exists(path)

    def isdir(self, path: str) -> bool:
        return os.path.isdir(path)

    def makedirs(self, path: str, exist_ok: bool = True) -> None:
        os.makedirs(path, exist_ok=exist_ok)

    # ----------------------------------------------------------- mutation ops
    def rename(self, source: str, target: str) -> None:
        os.rename(source, target)

    def replace(self, source: str, target: str) -> None:
        os.replace(source, target)

    def unlink(self, path: str) -> None:
        os.unlink(path)

    def utime(self, path: str) -> None:
        os.utime(path)

    # --------------------------------------------------------------- data ops
    def read_bytes(self, path: str) -> bytes:
        with open(path, "rb") as handle:
            return handle.read()

    def write_json_atomic(self, path: str, data: Any,
                          tmp_dir: Optional[str] = None) -> None:
        """Tempfile + rename so readers never observe a torn file.

        ``tmp_dir`` must be on the same filesystem as ``path`` for the
        rename to stay atomic; it defaults to the target's directory.
        """
        directory = (tmp_dir if tmp_dir is not None
                     else (os.path.dirname(path) or "."))
        payload = json.dumps(data, sort_keys=True).encode("utf-8")
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            try:
                os.write(fd, payload)
            finally:
                os.close(fd)
            self.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    def append_line(self, path: str, line: bytes) -> None:
        """One ``O_APPEND`` write: atomic w.r.t. other appenders (POSIX)."""
        fd = os.open(path, os.O_APPEND | os.O_CREAT | os.O_WRONLY, 0o644)
        try:
            os.write(fd, line)
        finally:
            os.close(fd)

    # ------------------------------------------------------------------ clock
    def time(self) -> float:
        """Wall-clock reads route here so clock-skew faults are injectable."""
        return time.time()


_DEFAULT_FS = FilesystemAdapter()


def default_fs() -> FilesystemAdapter:
    """The process-wide passthrough adapter (prod path: no indirection cost
    beyond one bound-method call)."""
    return _DEFAULT_FS


#: Errnos worth retrying: they plausibly clear without caller intervention.
_TRANSIENT_ERRNOS = frozenset(
    code for code in (
        errno.EIO,
        errno.ENOSPC,
        errno.EAGAIN,
        errno.EBUSY,
        getattr(errno, "ESTALE", None),     # NFS; absent on some platforms
        getattr(errno, "EDQUOT", None),
    ) if code is not None)


class RetryPolicy:
    """Capped exponential backoff with deterministic jitter.

    Parameters
    ----------
    attempts:
        Default total tries per operation (first call + retries).
    base_delay_s / max_delay_s:
        Backoff starts at ``base_delay_s`` and doubles per retry, capped at
        ``max_delay_s``.
    jitter:
        Fractional jitter added on top of the backoff delay.  The jitter is
        **deterministic**: drawn from a RNG seeded by ``(seed, op, attempt)``,
        so identical runs of a seeded fault plan back off identically (no
        hidden nondeterminism in chaos replays) while distinct operations
        still de-synchronise.
    budgets:
        Per-operation attempt overrides, e.g. ``{"spool_write": 6}``.
    seed:
        Jitter seed; fold the fault-plan seed in for chaos runs.
    sleep:
        Injection point for tests (defaults to :func:`time.sleep`).
    """

    def __init__(self, attempts: int = 4,
                 base_delay_s: float = 0.005,
                 max_delay_s: float = 0.25,
                 jitter: float = 0.5,
                 budgets: Optional[Dict[str, int]] = None,
                 seed: int = 0,
                 sleep: Callable[[float], None] = time.sleep,
                 retryable_errnos: frozenset = _TRANSIENT_ERRNOS) -> None:
        if attempts < 1:
            raise ValueError("attempts must be >= 1")
        self.attempts = attempts
        self.base_delay_s = base_delay_s
        self.max_delay_s = max_delay_s
        self.jitter = jitter
        self.budgets = dict(budgets or {})
        self.seed = seed
        self.sleep = sleep
        self.retryable_errnos = retryable_errnos
        self.retries = 0          #: total retries performed (all operations)

    def is_transient(self, exc: BaseException) -> bool:
        return (isinstance(exc, OSError)
                and exc.errno in self.retryable_errnos)

    def delay_s(self, op: str, attempt: int) -> float:
        """Deterministic backoff delay before retry number ``attempt``."""
        backoff = min(self.max_delay_s, self.base_delay_s * (2 ** attempt))
        draw = random.Random(f"{self.seed}:{op}:{attempt}").random()
        return backoff * (1.0 + self.jitter * draw)

    def call(self, fn: Callable[..., Any], *args: Any,
             op: str = "io", **kwargs: Any) -> Any:
        """Run ``fn`` retrying transient ``OSError`` up to the op's budget.

        Non-transient errors (and the final transient one) propagate so
        callers keep their semantic error handling (``ENOENT`` == lost
        race, etc.).
        """
        budget = max(1, self.budgets.get(op, self.attempts))
        for attempt in range(budget):
            try:
                return fn(*args, **kwargs)
            except OSError as exc:
                if not self.is_transient(exc) or attempt + 1 >= budget:
                    raise
                self.retries += 1
                self._count_retry(op)
                self.sleep(self.delay_s(op, attempt))
        raise AssertionError("unreachable")  # pragma: no cover

    def _count_retry(self, op: str) -> None:
        from repro.observability.metrics import default_metrics

        default_metrics().counter(
            "repro_io_retries_total",
            "Transient-I/O retries by operation").inc(op=op)
