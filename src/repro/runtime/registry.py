"""Solver registry.

Every solving method is described by a :class:`SolverSpec`: a canonical name,
the callable implementing it, aliases, and capability/complexity metadata
(exact vs. heuristic, deterministic vs. stochastic, whether it honours an
:class:`~repro.core.dwg.SSBWeighting`).  The registry replaces the ad-hoc
``if method == ...`` dispatch that used to live in :mod:`repro.core.solver`:
the facade now resolves the method name here, and higher layers (the
:class:`~repro.runtime.runner.BatchRunner`, the CLI, the experiment drivers)
can introspect capabilities — e.g. the runner only derives per-task seeds for
specs flagged ``stochastic``.

The default registry carries the paper's algorithm plus every baseline:

``colored-ssb``        the paper's adapted SSB search (exact)
``colored-ssb-labels`` label-dominance DAG sweep, no elimination loop (exact;
                       aliases ``labels`` / ``label-search``)
``colored-ssb-bidir``  bidirectional label sweep meeting in the middle of the
                       assignment DAG (exact; alias ``bidir``)
``colored-ssb-incremental`` label sweep warm-started from the last solve of
                       the same tree structure (exact; alias ``incremental``)
``brute-force``        full enumeration (exact reference)
``pareto-dp``          Pareto-frontier tree DP (exact reference)
``pareto-dp-pruned``   bound-pruned Pareto DP: beam incumbent + completion
                       potentials, exact through the scattered n>=30 blowup
                       regime (alias ``dp-pruned``)
``branch-and-bound``   exact B&B over feasible cuts
``sb-bottleneck``      Bokhari's bottleneck objective (alias ``bokhari-sb``)
``greedy``             hill-climbing heuristic
``random-search``      Monte-Carlo search (alias ``random``)
``genetic``            GA heuristic
``dag-heft``           HEFT on the §6 DAG relaxation, projected to a feasible cut
``dag-genetic``        GA on the §6 DAG relaxation, projected to a feasible cut
``portfolio``          staged racing portfolio under one anytime context
                       (alias ``auto``)

Anytime capability metadata: specs flagged ``supports_deadline`` observe a
:class:`~repro.core.context.SolveContext` cooperatively; ``anytime`` ones
additionally return their best incumbent as a ``feasible`` result when the
context fires.  Specs without the flag (``sb-bottleneck``, ``dag-heft``,
``dag-genetic``) run to completion; the batch runner keeps a hard-kill
process timeout as the fallback for exactly those.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Tuple

from repro.core.context import (
    STATUS_FEASIBLE,
    STATUS_OPTIMAL,
    SolveContext,
    SolveInterrupted,
)
from repro.core.dwg import SSBWeighting
from repro.model.problem import AssignmentProblem
from repro.observability.metrics import default_metrics


def _observe_convergence(method: str, history: List[Any]) -> None:
    """Feed a solve's incumbent history into the convergence histograms.

    ``history[0]`` is the first feasible incumbent, ``history[-1]`` the best
    one found; their elapsed offsets are the paper-relevant anytime quality
    signals (how fast a feasible answer exists, how fast it stops
    improving), aggregated per method.
    """
    if not history:
        return
    metrics = default_metrics()
    metrics.histogram(
        "repro_incumbent_first_seconds",
        "Seconds until a solve's first feasible incumbent, by method",
    ).observe(history[0][0], method=method)
    metrics.histogram(
        "repro_incumbent_best_seconds",
        "Seconds until a solve's final best incumbent, by method",
    ).observe(history[-1][0], method=method)


class UnknownSolverError(ValueError):
    """Raised when a method name matches neither a solver nor an alias."""

    def __init__(self, name: str, available: List[str]) -> None:
        super().__init__(f"unknown method {name!r}; available: {available}")
        self.name = name
        self.available = available


# A runner takes (problem, weighting, options) and returns (assignment, details).
SolverCallable = Callable[
    [AssignmentProblem, Optional[SSBWeighting], Mapping[str, Any]],
    Tuple[Any, Dict[str, Any]],
]


@dataclass(frozen=True)
class SolverSpec:
    """One registered solving method plus its capability metadata."""

    name: str
    runner: SolverCallable
    description: str = ""
    exact: bool = False                 #: guaranteed to return the optimum
    stochastic: bool = False            #: consumes a ``seed`` option
    supports_weighting: bool = False    #: honours an SSBWeighting objective
    supports_deadline: bool = False     #: observes a SolveContext cooperatively
    anytime: bool = False               #: returns a feasible incumbent on expiry
    complexity: str = "?"               #: informal worst-case complexity
    aliases: Tuple[str, ...] = ()
    limits: Tuple[str, ...] = ()        #: known blowup regimes / hard caps

    def solve(self, problem: AssignmentProblem,
              weighting: Optional[SSBWeighting] = None,
              context: Optional[SolveContext] = None,
              **options: Any) -> "SolverResult":
        """Run the method and wrap the outcome in a uniform result record.

        ``context`` is forwarded into the runner (as the ``"context"``
        option) only for specs flagged ``supports_deadline`` — other
        runners never see it and run to completion as before.  The result's
        ``status`` is derived here: ``optimal`` for an exact spec that ran
        uninterrupted, ``feasible`` otherwise; a context that fires before
        the solver holds any incumbent surfaces as a ``timeout``/
        ``cancelled`` result with no assignment.
        """
        from repro.core.solver import SolverResult

        started = time.perf_counter()
        run_options = dict(options)
        if context is not None and self.supports_deadline:
            run_options["context"] = context
        # On a traced solve, wrap this method in its own child span and point
        # context.span at it for the runner's duration, so hot-path profiling
        # (and incumbent events fired inside the runner) attach to the method
        # that produced them — the portfolio runs several methods per solve.
        parent_span = context.span if context is not None else None
        method_span = None
        if parent_span is not None:
            method_span = parent_span.child(f"method:{self.name}")
            context.span = method_span
        try:
            assignment, details = self.runner(problem, weighting, run_options)
        except SolveInterrupted as exc:
            if method_span is not None:
                context.span = parent_span
                method_span.finish(interrupted=exc.kind, status=exc.status)
            interrupted_history = (list(context.incumbent_history)
                                   if context is not None else [])
            _observe_convergence(self.name, interrupted_history)
            return SolverResult(
                method=self.name,
                assignment=None,
                objective=float("inf"),
                elapsed_s=time.perf_counter() - started,
                details={"interrupted": exc.kind},
                status=exc.status,
                incumbent_history=interrupted_history,
            )
        except BaseException as exc:
            if method_span is not None:
                context.span = parent_span
                method_span.finish(error=f"{type(exc).__name__}: {exc}")
            raise
        elapsed = time.perf_counter() - started
        objective = assignment.end_to_end_delay()
        if (context is not None and not self.supports_deadline
                and context.deadline is not None):
            # this spec cannot observe the budget; say so rather than letting
            # the caller believe their deadline was enforced (the batch
            # runner's hard-kill fallback is the enforcing path for these)
            details.setdefault("deadline_ignored", True)
        interrupted = details.get("interrupted")
        status = STATUS_OPTIMAL if (self.exact and not interrupted) \
            else STATUS_FEASIBLE
        if method_span is not None:
            context.span = parent_span
            method_span.set_attr("status", status)
            method_span.set_attr("objective", objective)
            method_span.finish()
        history: List[Tuple[float, float, Optional[str]]] = []
        if context is not None:
            # the final objective always enters the history, even for solvers
            # that report no intermediate incumbents
            context.report_incumbent(objective, source=self.name)
            history = list(context.incumbent_history)
            _observe_convergence(self.name, history)
        return SolverResult(
            method=self.name,
            assignment=assignment,
            objective=objective,
            elapsed_s=elapsed,
            details=details,
            status=status,
            incumbent_history=history,
        )

    def metadata(self) -> Dict[str, Any]:
        """Capability metadata as a plain dict (for tables / JSON output)."""
        return {
            "name": self.name,
            "description": self.description,
            "exact": self.exact,
            "stochastic": self.stochastic,
            "supports_weighting": self.supports_weighting,
            "supports_deadline": self.supports_deadline,
            "anytime": self.anytime,
            "complexity": self.complexity,
            "aliases": list(self.aliases),
            "limits": list(self.limits),
        }


class SolverRegistry:
    """Name -> :class:`SolverSpec` mapping with alias resolution."""

    def __init__(self) -> None:
        self._specs: Dict[str, SolverSpec] = {}
        self._aliases: Dict[str, str] = {}

    # ------------------------------------------------------------ population
    def register(self, spec: SolverSpec) -> SolverSpec:
        if spec.name in self._specs or spec.name in self._aliases:
            raise ValueError(f"solver {spec.name!r} is already registered")
        for alias in spec.aliases:
            if alias in self._specs or alias in self._aliases:
                raise ValueError(f"alias {alias!r} is already registered")
        self._specs[spec.name] = spec
        for alias in spec.aliases:
            self._aliases[alias] = spec.name
        return spec

    def register_solver(self, name: str, **metadata: Any
                        ) -> Callable[[SolverCallable], SolverCallable]:
        """Decorator form of :meth:`register`."""
        def decorate(runner: SolverCallable) -> SolverCallable:
            self.register(SolverSpec(name=name, runner=runner, **metadata))
            return runner
        return decorate

    # ------------------------------------------------------------ resolution
    def canonical_name(self, name: str) -> str:
        if name in self._specs:
            return name
        if name in self._aliases:
            return self._aliases[name]
        raise UnknownSolverError(name, self.names())

    def resolve(self, name: str) -> SolverSpec:
        return self._specs[self.canonical_name(name)]

    def __contains__(self, name: str) -> bool:
        return name in self._specs or name in self._aliases

    def __iter__(self) -> Iterator[SolverSpec]:
        return iter(self._specs.values())

    def __len__(self) -> int:
        return len(self._specs)

    def names(self, include_aliases: bool = False) -> List[str]:
        names = list(self._specs)
        if include_aliases:
            names += sorted(self._aliases)
        return names

    def specs(self) -> List[SolverSpec]:
        return list(self._specs.values())


# --------------------------------------------------------------------------
# Default registry: the paper's algorithm and every baseline.
# --------------------------------------------------------------------------
def _run_colored_ssb(problem: AssignmentProblem, weighting: Optional[SSBWeighting],
                     options: Mapping[str, Any]):
    from repro.core.assignment_graph import build_assignment_graph
    from repro.core.coloring import color_tree
    from repro.core.colored_ssb import ColoredSSBSearch

    colored = color_tree(problem)
    graph = build_assignment_graph(problem, colored_tree=colored)
    search = ColoredSSBSearch(weighting=weighting,
                              enable_expansion=options.get("enable_expansion", True),
                              finisher=options.get("finisher", "labels"),
                              label_frontier=options.get("label_frontier",
                                                         "bucketed"))
    result = search.search(graph.dwg, context=options.get("context"))
    if not result.found:
        raise RuntimeError("the coloured assignment graph has no S-T path; "
                           "the instance admits no feasible assignment")
    assignment = graph.path_to_assignment(result.path)
    details = {
        "ssb_weight": result.ssb_weight,
        "s_weight": result.s_weight,
        "b_weight": result.b_weight,
        "iterations": result.iteration_count,
        "expansions": result.expansions,
        "enumerated_paths": result.enumerated_paths,
        "termination": result.termination,
        "finisher": result.finisher,
        "assignment_graph_edges": graph.number_of_edges(),
        "search_result": result,
        "assignment_graph": graph,
    }
    if result.label_stats is not None:
        details["profile"] = _label_search_profile(result.label_stats)
    if result.interrupted:
        details["interrupted"] = result.interrupted
    return assignment, details


def _label_search_profile(stats) -> Dict[str, Any]:
    """Bound-effectiveness profile from one sweep's stats (flat scalars)."""
    return {
        "engine": "label-search",
        "labels_created": stats.labels_created,
        "labels_dominated": stats.labels_dominated,
        "pruned_floor": stats.pruned_floor,
        "pruned_colour": stats.pruned_colour,
        "pruned_joint": stats.pruned_joint,
        "pruned_settle": stats.pruned_settle,
        "pruned_meet": stats.pruned_meet,
        "meet_edges": stats.meet_edges,
        "pruned_total": stats.labels_bound_pruned,
        "frontier_peak": stats.frontier_peak,
        "settle_batches": stats.settle_batches,
        "nodes_swept": stats.nodes_swept,
    }


def _run_colored_ssb_labels(problem: AssignmentProblem,
                            weighting: Optional[SSBWeighting],
                            options: Mapping[str, Any]):
    """Pure label-dominance solve: one DAG sweep, no elimination loop."""
    from repro.core.assignment_graph import build_assignment_graph
    from repro.core.coloring import color_tree
    from repro.core.label_search import LabelDominanceSearch

    colored = color_tree(problem)
    graph = build_assignment_graph(problem, colored_tree=colored)
    search = LabelDominanceSearch(
        weighting=weighting,
        beam_width=options.get("beam_width", 128),
        frontier=options.get("frontier", "bucketed"),
        dominance_window=options.get("dominance_window", 128),
        direction=options.get("direction", "forward"))
    result = search.search(graph.dwg, context=options.get("context"))
    if not result.found:
        raise RuntimeError("the coloured assignment graph has no S-T path; "
                           "the instance admits no feasible assignment")
    assignment = graph.path_to_assignment(result.path)
    details = {
        "ssb_weight": result.ssb_weight,
        "s_weight": result.s_weight,
        "b_weight": result.b_weight,
        "labels_created": result.stats.labels_created,
        "labels_dominated": result.stats.labels_dominated,
        "labels_bound_pruned": result.stats.labels_bound_pruned,
        "beam_ssb": result.stats.beam_ssb,
        "profile": _label_search_profile(result.stats),
        "assignment_graph_edges": graph.number_of_edges(),
        "search_result": result,
        "assignment_graph": graph,
    }
    if result.interrupted:
        details["interrupted"] = result.interrupted
    return assignment, details


def _run_colored_ssb_bidir(problem: AssignmentProblem,
                           weighting: Optional[SSBWeighting],
                           options: Mapping[str, Any]):
    """Bidirectional label sweep: half-sweeps joined at the meet layer."""
    opts = dict(options)
    opts["direction"] = "bidirectional"
    return _run_colored_ssb_labels(problem, weighting, opts)


def _run_colored_ssb_incremental(problem, weighting, options):
    """Label sweep with structure-keyed warm starts (distributed.incremental).

    Options: ``index`` (a WarmStartIndex, in-process callers), ``warm_dir``
    (directory of a shared on-disk index — what spool workers inject),
    ``beam_width`` (cold-solve pre-pass width).
    """
    from repro.distributed.incremental import IncrementalSolver, WarmStartIndex

    index = options.get("index")
    if index is None and options.get("warm_dir"):
        index = WarmStartIndex(directory=options["warm_dir"])
    solver = IncrementalSolver(index=index, weighting=weighting,
                               beam_width=options.get("beam_width", 128))
    return solver.solve(problem, context=options.get("context"))


def _run_brute_force(problem, weighting, options):
    from repro.baselines import brute_force_assignment
    return brute_force_assignment(problem, weighting=weighting,
                                  context=options.get("context"))


#: Default frontier cap for the pareto-dp spec.  Calibrated: instances that
#: solve in seconds keep their frontiers under ~2k labels (n=20 scattered:
#: 1536), while the known scattered-n>=30 blowup shoots past this cap within
#: ~1s — so the guard raises fast instead of grinding for minutes first.
PARETO_DP_MAX_FRONTIER = 8192

#: Safety-valve cap of the bound-pruned DP.  Its per-state frontiers stay in
#: the hundreds through scattered n=40 (peak ~5.6k), so the raised cap only
#: fires on instances far beyond anything the pruning was calibrated for —
#: a true valve, not an expected failure mode.
PARETO_DP_PRUNED_MAX_FRONTIER = 65536


def _run_pareto_dp(problem, weighting, options):
    from repro.baselines import pareto_dp_assignment
    return pareto_dp_assignment(
        problem, weighting=weighting,
        max_frontier=options.get("max_frontier", PARETO_DP_MAX_FRONTIER),
        context=options.get("context"))


def _run_pareto_dp_pruned(problem, weighting, options):
    from repro.baselines import pareto_dp_pruned_assignment
    return pareto_dp_pruned_assignment(
        problem, weighting=weighting,
        max_frontier=options.get("max_frontier", PARETO_DP_PRUNED_MAX_FRONTIER),
        beam_width=options.get("beam_width", 16),
        context=options.get("context"))


def _run_bokhari_sb(problem, weighting, options):
    from repro.baselines import bokhari_sb_assignment
    return bokhari_sb_assignment(problem)


def _run_greedy(problem, weighting, options):
    from repro.baselines import greedy_assignment
    return greedy_assignment(problem, **options)


def _run_random_search(problem, weighting, options):
    from repro.baselines import random_search_assignment
    return random_search_assignment(problem, **options)


def _run_genetic(problem, weighting, options):
    from repro.baselines import genetic_assignment
    return genetic_assignment(problem, **options)


def _run_branch_and_bound(problem, weighting, options):
    from repro.baselines import branch_and_bound_assignment
    return branch_and_bound_assignment(problem, **options)


def _run_dag_heft(problem, weighting, options):
    from repro.extensions.bridge import dag_placement_to_assignment, problem_to_dag
    from repro.extensions.dag_heuristics import heft_placement

    tasks, resources = problem_to_dag(problem)
    placement, info = heft_placement(tasks, resources)
    assignment = dag_placement_to_assignment(problem, placement)
    return assignment, {"dag_makespan": info["makespan"],
                        "projected_delay": assignment.end_to_end_delay()}


def _run_dag_genetic(problem, weighting, options):
    from repro.extensions.bridge import dag_placement_to_assignment, problem_to_dag
    from repro.extensions.dag_heuristics import genetic_dag_placement

    tasks, resources = problem_to_dag(problem)
    placement, info = genetic_dag_placement(
        tasks, resources,
        population_size=options.get("population_size", 30),
        generations=options.get("generations", 40),
        mutation_rate=options.get("mutation_rate", 0.1),
        seed=options.get("seed"))
    assignment = dag_placement_to_assignment(problem, placement)
    return assignment, {"dag_makespan": info["makespan"],
                        "dag_evaluations": info["evaluations"],
                        "projected_delay": assignment.end_to_end_delay()}


def _run_portfolio(problem, weighting, options):
    """Staged racing portfolio (see :mod:`repro.core.portfolio`)."""
    from repro.core.portfolio import PortfolioSolver

    solver = PortfolioSolver(weighting=weighting,
                             cross_check=options.get("cross_check", "auto"),
                             beam_width=options.get("beam_width", 128))
    return solver.solve(problem, context=options.get("context"))


_DEFAULT_SPECS: Tuple[SolverSpec, ...] = (
    SolverSpec(
        name="colored-ssb",
        runner=_run_colored_ssb,
        supports_deadline=True,
        anytime=True,
        description="the paper's adapted SSB search on the coloured assignment graph",
        exact=True,
        supports_weighting=True,
        complexity="O(|V|^2 |E|) on the assignment graph",
    ),
    SolverSpec(
        name="colored-ssb-labels",
        runner=_run_colored_ssb_labels,
        supports_deadline=True,
        anytime=True,
        description="label-dominance DAG sweep on the coloured assignment graph",
        exact=True,
        supports_weighting=True,
        complexity="O(labels * out-degree) with Pareto/bound pruning",
        aliases=("labels", "label-search"),
    ),
    SolverSpec(
        name="colored-ssb-bidir",
        runner=_run_colored_ssb_bidir,
        supports_deadline=True,
        anytime=True,
        description="bidirectional label sweep: forward and backward "
                    "half-sweeps meet in the middle of the assignment DAG "
                    "and join over the crossing edges",
        exact=True,
        supports_weighting=True,
        complexity="O(labels * out-degree) per half; join bounded by the "
                   "per-colour and average meet floors",
        aliases=("bidir",),
        limits=("wins on deep scattered trees (n>=45) where half-depth "
                "frontiers stay far smaller than full-depth ones; on "
                "shallow or star-like graphs the forward sweep is faster",),
    ),
    SolverSpec(
        name="colored-ssb-incremental",
        runner=_run_colored_ssb_incremental,
        supports_deadline=True,
        anytime=True,
        description="label-dominance sweep warm-started from the last solve "
                    "of the same tree structure (profiles/costs may differ)",
        exact=True,
        supports_weighting=True,
        complexity="O(labels * out-degree), sharply pruned on warm re-solves",
        aliases=("incremental",),
    ),
    SolverSpec(
        name="brute-force",
        runner=_run_brute_force,
        supports_deadline=True,
        anytime=True,
        description="full enumeration of feasible cuts (exact reference)",
        exact=True,
        supports_weighting=True,
        complexity="exponential in the number of offloadable subtrees",
    ),
    SolverSpec(
        name="pareto-dp",
        runner=_run_pareto_dp,
        supports_deadline=True,
        anytime=True,
        description="Pareto-frontier tree DP (exact reference, full frontier)",
        exact=True,
        supports_weighting=True,
        complexity="output-sensitive in the frontier size",
        limits=(f"frontier blowup on scattered n>=30: raises FrontierExplosion "
                f"past max_frontier (default {PARETO_DP_MAX_FRONTIER}) instead "
                f"of hanging; use pareto-dp-pruned there",),
    ),
    SolverSpec(
        name="pareto-dp-pruned",
        runner=_run_pareto_dp_pruned,
        supports_deadline=True,
        anytime=True,
        description="bound-pruned Pareto tree DP: beam-pre-pass incumbent + "
                    "completion-DAG potentials, exact optimum without "
                    "materialising the frontier",
        exact=True,
        supports_weighting=True,
        complexity="output-sensitive in the *pruned* frontier size",
        aliases=("dp-pruned",),
        limits=(f"safety valve: raises FrontierExplosion past max_frontier "
                f"(default {PARETO_DP_PRUNED_MAX_FRONTIER}) if an instance "
                f"defeats the pruning; calibrated exact through scattered "
                f"n=40",),
    ),
    SolverSpec(
        name="sb-bottleneck",
        runner=_run_bokhari_sb,
        description="Bokhari's bottleneck objective max(host, max satellite)",
        complexity="polynomial (SB path search)",
        aliases=("bokhari-sb",),
    ),
    SolverSpec(
        name="greedy",
        runner=_run_greedy,
        supports_deadline=True,
        anytime=True,
        description="hill-climbing from the maximal-offload cut",
        complexity="O(steps * |T|)",
    ),
    SolverSpec(
        name="random-search",
        runner=_run_random_search,
        supports_deadline=True,
        anytime=True,
        description="best of N uniformly sampled feasible cuts",
        stochastic=True,
        complexity="O(samples * |T|)",
        aliases=("random",),
    ),
    SolverSpec(
        name="genetic",
        runner=_run_genetic,
        supports_deadline=True,
        anytime=True,
        description="genetic algorithm over offload-preference chromosomes",
        stochastic=True,
        complexity="O(generations * population * |T|)",
    ),
    SolverSpec(
        name="branch-and-bound",
        runner=_run_branch_and_bound,
        supports_deadline=True,
        anytime=True,
        description="exact branch-and-bound over feasible cuts",
        exact=True,
        complexity="exponential worst case, pruned in practice",
    ),
    SolverSpec(
        name="dag-heft",
        runner=_run_dag_heft,
        description="HEFT list scheduling on the §6 DAG relaxation, "
                    "projected back to a feasible cut",
        complexity="O(|T|^2 * |R|)",
        aliases=("heft",),
    ),
    SolverSpec(
        name="dag-genetic",
        runner=_run_dag_genetic,
        description="genetic placement on the §6 DAG relaxation, "
                    "projected back to a feasible cut",
        stochastic=True,
        complexity="O(generations * population * |T|)",
    ),
    SolverSpec(
        name="portfolio",
        runner=_run_portfolio,
        description="feature-scheduled racing portfolio: greedy incumbent "
                    "seed, label-dominance main stage, pruned-DP cross-check, "
                    "all under one shared anytime context",
        exact=True,
        supports_weighting=True,
        supports_deadline=True,
        anytime=True,
        complexity="dominated by the label sweep; greedy seed is O(steps·|T|)",
        aliases=("auto",),
    ),
)

_default: Optional[SolverRegistry] = None


def default_registry() -> SolverRegistry:
    """The process-wide registry holding the paper's method and all baselines."""
    global _default
    if _default is None:
        registry = SolverRegistry()
        for spec in _DEFAULT_SPECS:
            registry.register(spec)
        _default = registry
    return _default
