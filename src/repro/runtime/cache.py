"""Result cache keyed by a canonical problem hash.

A cache key identifies (instance, method, weighting, options) so a warm sweep
can skip every instance that was already solved with identical settings.  The
instance part of the key is a SHA-256 over the canonical JSON produced by
:mod:`repro.model.serialization` — two structurally identical problems hash
identically regardless of construction order of dict-valued fields.

Two stores are provided, plus a tier combining them:

* :class:`LRUResultCache` — bounded in-memory store with LRU eviction;
* :class:`JSONFileCache` — one JSON file per key under a directory, written
  atomically, so sweeps survive process restarts and can be shared between
  workers;
* :class:`TieredResultCache` — memory in front of disk, promoting disk hits.

Entries are plain JSON-safe dicts (method, objective, placement, elapsed_s,
details) so they can cross process boundaries and be diffed on disk.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from collections import OrderedDict
from typing import Any, Dict, Mapping, Optional, Protocol

from repro.core.dwg import SSBWeighting
from repro.model.problem import AssignmentProblem
from repro.model.serialization import problem_to_dict

CacheEntry = Dict[str, Any]

_ENTRY_VERSION = 1


# ------------------------------------------------------------------- hashing
def _canonical_json(data: Any) -> str:
    return json.dumps(data, sort_keys=True, separators=(",", ":"), default=repr)


def problem_fingerprint(problem: AssignmentProblem) -> str:
    """SHA-256 hex digest of the canonical serialised instance.

    Memoised on the instance (serialising + hashing sits on the batch
    dispatch hot path and sweeps hash the same problems repeatedly); the
    model's ``invalidate_caches()`` drops the memo after in-place mutation.
    """
    cached = getattr(problem, "_fingerprint_cache", None)
    if cached is not None:
        return cached
    fingerprint = hashlib.sha256(
        _canonical_json(problem_to_dict(problem)).encode("utf-8")).hexdigest()
    problem._fingerprint_cache = fingerprint
    return fingerprint


def options_fingerprint(options: Optional[Mapping[str, Any]] = None,
                        weighting: Optional[SSBWeighting] = None) -> str:
    """Stable digest of solver options + objective weighting."""
    payload = {
        "options": dict(sorted((options or {}).items())),
        "weighting": (None if weighting is None
                      else [weighting.lambda_s, weighting.lambda_b]),
    }
    return hashlib.sha256(_canonical_json(payload).encode("utf-8")).hexdigest()


def result_key(problem: AssignmentProblem, method: str,
               options: Optional[Mapping[str, Any]] = None,
               weighting: Optional[SSBWeighting] = None,
               problem_hash: Optional[str] = None) -> str:
    """The full cache key for one (instance, method, options) combination.

    ``problem_hash`` short-circuits re-hashing when the caller already
    fingerprinted the instance (the BatchRunner hashes each instance once).
    """
    instance = problem_hash or problem_fingerprint(problem)
    return f"{instance}-{method}-{options_fingerprint(options, weighting)[:16]}"


def make_cache_entry(method: str, objective: float, elapsed_s: float,
                     placement: Mapping[str, str],
                     details: Mapping[str, Any]) -> CacheEntry:
    """The one place the entry format (and its version stamp) is defined."""
    return {
        "entry_version": _ENTRY_VERSION,
        "method": method,
        "objective": objective,
        "elapsed_s": elapsed_s,
        "placement": dict(placement),
        "details": json_safe_details(details),
    }


def cache_entry_from_result(result: "Any") -> CacheEntry:
    """Build a JSON-safe cache entry from a :class:`SolverResult`."""
    return make_cache_entry(result.method, result.objective, result.elapsed_s,
                            result.assignment.placement, result.details)


def json_safe_details(details: Mapping[str, Any]) -> Dict[str, Any]:
    """Keep only the JSON-representable part of a details dict."""
    safe: Dict[str, Any] = {}
    for key, value in details.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            safe[key] = value
        elif isinstance(value, (list, tuple)) and all(
                isinstance(v, (str, int, float, bool)) or v is None for v in value):
            safe[key] = list(value)
    return safe


# -------------------------------------------------------------------- stores
class ResultCache(Protocol):
    """Minimal store interface the runner relies on."""

    def get(self, key: str) -> Optional[CacheEntry]: ...

    def put(self, key: str, entry: CacheEntry) -> None: ...


class _CacheStats:
    """Hit/miss accounting shared by all stores."""

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0

    @property
    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses}


class LRUResultCache(_CacheStats):
    """Bounded in-memory result store with least-recently-used eviction."""

    def __init__(self, maxsize: int = 4096) -> None:
        super().__init__()
        if maxsize < 1:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()

    def get(self, key: str) -> Optional[CacheEntry]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: str, entry: CacheEntry) -> None:
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def clear(self) -> None:
        self._entries.clear()


class JSONFileCache(_CacheStats):
    """One JSON file per key under ``directory`` (created on demand).

    Writes are atomic (tempfile + rename) so concurrent workers sharing the
    directory can never observe a torn entry; unreadable files count as
    misses instead of raising.
    """

    def __init__(self, directory: str) -> None:
        super().__init__()
        self.directory = directory

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.json")

    def get(self, key: str) -> Optional[CacheEntry]:
        try:
            with open(self._path(key), "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            self.misses += 1
            return None
        if not isinstance(entry, dict) or entry.get("entry_version") != _ENTRY_VERSION:
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def put(self, key: str, entry: CacheEntry) -> None:
        os.makedirs(self.directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(entry, handle, sort_keys=True)
            os.replace(tmp_path, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        try:
            return sum(1 for name in os.listdir(self.directory)
                       if name.endswith(".json"))
        except OSError:
            return 0

    def clear(self) -> None:
        try:
            names = os.listdir(self.directory)
        except OSError:
            return
        for name in names:
            if name.endswith(".json"):
                try:
                    os.unlink(os.path.join(self.directory, name))
                except OSError:
                    pass


class TieredResultCache(_CacheStats):
    """In-memory LRU in front of an optional on-disk store.

    Disk hits are promoted into memory; writes go to both tiers.
    """

    def __init__(self, memory: Optional[LRUResultCache] = None,
                 disk: Optional[JSONFileCache] = None) -> None:
        super().__init__()
        self.memory = memory if memory is not None else LRUResultCache()
        self.disk = disk

    def get(self, key: str) -> Optional[CacheEntry]:
        entry = self.memory.get(key)
        if entry is None and self.disk is not None:
            entry = self.disk.get(key)
            if entry is not None:
                self.memory.put(key, entry)
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
        return entry

    def put(self, key: str, entry: CacheEntry) -> None:
        self.memory.put(key, entry)
        if self.disk is not None:
            self.disk.put(key, entry)
