"""Result cache keyed by a canonical problem hash.

A cache key identifies (instance, method, weighting, options) so a warm sweep
can skip every instance that was already solved with identical settings.  The
instance part of the key is a SHA-256 over the canonical JSON produced by
:mod:`repro.model.serialization` — two structurally identical problems hash
identically regardless of construction order of dict-valued fields.

Two stores are provided, plus a tier combining them:

* :class:`LRUResultCache` — bounded in-memory store with LRU eviction;
* :class:`JSONFileCache` — one JSON file per key, **sharded** into 256
  two-hex-character subdirectories (million-entry stores must not put every
  file into one directory); writes are atomic, flat legacy entries migrate
  into their shard transparently on first access, and hits touch the file
  mtime so the :class:`~repro.distributed.janitor.CacheJanitor` can evict
  least-recently-*used* entries first;
* :class:`TieredResultCache` — memory in front of disk, promoting disk hits.

Stores additionally expose ``get_with_source`` returning ``(entry, tier)``
(``"memory"`` / ``"disk"``) so callers like the
:class:`~repro.runtime.runner.BatchRunner` can report which tier served each
hit; :func:`cache_get_with_source` adapts stores that only implement ``get``.

Entries are plain JSON-safe dicts (method, objective, placement, elapsed_s,
details) so they can cross process boundaries and be diffed on disk.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from collections import OrderedDict
from typing import Any, Dict, Iterator, Mapping, Optional, Protocol, Tuple

from repro.core.dwg import SSBWeighting
from repro.model.problem import AssignmentProblem
from repro.model.serialization import problem_to_dict
from repro.observability.metrics import default_metrics

CacheEntry = Dict[str, Any]

_ENTRY_VERSION = 1


def write_json_atomic(path: str, data: Any,
                      tmp_dir: Optional[str] = None) -> None:
    """Write JSON via tempfile + rename so readers never see a torn file.

    The temp file is staged in ``tmp_dir`` (default: the target's directory —
    it must be on the same filesystem for the rename to stay atomic) and
    unlinked on failure.  Shared by the result cache, the work-queue spool
    and the warm-start index.
    """
    directory = tmp_dir if tmp_dir is not None else (os.path.dirname(path) or ".")
    fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(data, handle, sort_keys=True)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


# ------------------------------------------------------------------- hashing
def _canonical_json(data: Any) -> str:
    return json.dumps(data, sort_keys=True, separators=(",", ":"), default=repr)


def problem_fingerprint(problem: AssignmentProblem) -> str:
    """SHA-256 hex digest of the canonical serialised instance.

    Memoised on the instance (serialising + hashing sits on the batch
    dispatch hot path and sweeps hash the same problems repeatedly); the
    model's ``invalidate_caches()`` drops the memo after in-place mutation.
    """
    cached = getattr(problem, "_fingerprint_cache", None)
    if cached is not None:
        return cached
    fingerprint = hashlib.sha256(
        _canonical_json(problem_to_dict(problem)).encode("utf-8")).hexdigest()
    problem._fingerprint_cache = fingerprint
    return fingerprint


def options_fingerprint(options: Optional[Mapping[str, Any]] = None,
                        weighting: Optional[SSBWeighting] = None) -> str:
    """Stable digest of solver options + objective weighting."""
    payload = {
        "options": dict(sorted((options or {}).items())),
        "weighting": (None if weighting is None
                      else [weighting.lambda_s, weighting.lambda_b]),
    }
    return hashlib.sha256(_canonical_json(payload).encode("utf-8")).hexdigest()


def result_key(problem: AssignmentProblem, method: str,
               options: Optional[Mapping[str, Any]] = None,
               weighting: Optional[SSBWeighting] = None,
               problem_hash: Optional[str] = None) -> str:
    """The full cache key for one (instance, method, options) combination.

    ``problem_hash`` short-circuits re-hashing when the caller already
    fingerprinted the instance (the BatchRunner hashes each instance once).
    """
    instance = problem_hash or problem_fingerprint(problem)
    return f"{instance}-{method}-{options_fingerprint(options, weighting)[:16]}"


def make_cache_entry(method: str, objective: float, elapsed_s: float,
                     placement: Mapping[str, str],
                     details: Mapping[str, Any],
                     status: Optional[str] = None) -> CacheEntry:
    """The one place the entry format (and its version stamp) is defined.

    Only *uninterrupted* results are ever cached (anytime partials would
    serve sub-optimal objectives to future budget-free requests), so
    ``status`` — recorded since the anytime refactor — is always
    ``optimal`` or ``feasible`` when present.
    """
    entry: CacheEntry = {
        "entry_version": _ENTRY_VERSION,
        "method": method,
        "objective": objective,
        "elapsed_s": elapsed_s,
        "placement": dict(placement),
        "details": json_safe_details(details),
    }
    if status is not None:
        entry["status"] = status
    return entry


def cache_entry_from_result(result: "Any") -> CacheEntry:
    """Build a JSON-safe cache entry from a :class:`SolverResult`."""
    return make_cache_entry(result.method, result.objective, result.elapsed_s,
                            result.assignment.placement, result.details,
                            status=getattr(result, "status", None))


def _json_safe_scalar_or_list(value: Any) -> bool:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return True
    return isinstance(value, (list, tuple)) and all(
        isinstance(v, (str, int, float, bool)) or v is None for v in value)


def json_safe_details(details: Mapping[str, Any]) -> Dict[str, Any]:
    """Keep only the JSON-representable part of a details dict.

    Scalars, flat scalar lists, and **one level** of nested dicts of those
    (e.g. the solver's ``details["profile"]`` bound-effectiveness table) are
    kept; everything else — graphs, search results, arbitrary objects — is
    dropped so the result can cross a process boundary or rest in a cache
    file.
    """
    safe: Dict[str, Any] = {}
    for key, value in details.items():
        if _json_safe_scalar_or_list(value):
            safe[key] = list(value) if isinstance(value, (list, tuple)) else value
        elif isinstance(value, Mapping):
            nested = {k: (list(v) if isinstance(v, (list, tuple)) else v)
                      for k, v in value.items()
                      if _json_safe_scalar_or_list(v)}
            if nested:
                safe[key] = nested
    return safe


# -------------------------------------------------------------------- stores
class ResultCache(Protocol):
    """Minimal store interface the runner relies on."""

    def get(self, key: str) -> Optional[CacheEntry]: ...

    def put(self, key: str, entry: CacheEntry) -> None: ...


def cache_get_with_source(cache: ResultCache, key: str
                          ) -> Tuple[Optional[CacheEntry], Optional[str]]:
    """Probe a store, reporting which tier served the hit when it can tell.

    Stores implementing ``get_with_source`` answer directly; anything else is
    probed through plain ``get`` and attributed to the generic ``"cache"``
    source.
    """
    probe = getattr(cache, "get_with_source", None)
    if probe is not None:
        return probe(key)
    entry = cache.get(key)
    return entry, ("cache" if entry is not None else None)


class _CacheStats:
    """Hit/miss accounting shared by all stores.

    Each probe also feeds the process-wide
    ``repro_cache_requests_total{tier,outcome}`` counter, so the memory /
    disk / tiered hit split shows up in metrics snapshots without callers
    polling every store's ``stats``.
    """

    #: metrics label identifying the store tier; overridden per subclass
    _metrics_tier = "cache"

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self._requests = default_metrics().counter(
            "repro_cache_requests_total",
            "Result-cache probes by store tier and hit/miss outcome")

    def _hit(self) -> None:
        self.hits += 1
        self._requests.inc(tier=self._metrics_tier, outcome="hit")

    def _miss(self) -> None:
        self.misses += 1
        self._requests.inc(tier=self._metrics_tier, outcome="miss")

    @property
    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses}


class LRUResultCache(_CacheStats):
    """Bounded in-memory result store with least-recently-used eviction."""

    _metrics_tier = "memory"

    def __init__(self, maxsize: int = 4096) -> None:
        super().__init__()
        if maxsize < 1:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()

    def get(self, key: str) -> Optional[CacheEntry]:
        entry = self._entries.get(key)
        if entry is None:
            self._miss()
            return None
        self._entries.move_to_end(key)
        self._hit()
        return entry

    def get_with_source(self, key: str
                        ) -> Tuple[Optional[CacheEntry], Optional[str]]:
        entry = self.get(key)
        return entry, ("memory" if entry is not None else None)

    def put(self, key: str, entry: CacheEntry) -> None:
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self._requests.inc(tier=self._metrics_tier, outcome="eviction")

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def clear(self) -> None:
        self._entries.clear()


def shard_of(key: str) -> str:
    """The two-hex-character shard subdirectory a key lives in.

    Sharding hashes the key instead of slicing it so arbitrary keys (not just
    the hex-prefixed ones :func:`result_key` produces) spread uniformly over
    exactly 256 directories.
    """
    return hashlib.sha256(key.encode("utf-8")).hexdigest()[:2]


def _is_shard_name(name: str) -> bool:
    return len(name) == 2 and all(c in "0123456789abcdef" for c in name)


class JSONFileCache(_CacheStats):
    """One JSON file per key, sharded into 256 two-hex subdirectories.

    ``directory/<shard>/<key>.json`` where ``shard`` is the first two hex
    characters of SHA-256 of the key — a million-entry store puts ~4k files
    per directory instead of a million in one.  Writes are atomic (tempfile +
    rename inside the shard) so concurrent workers sharing the directory can
    never observe a torn entry.  An entry file that exists but is not valid
    JSON — a torn write that landed, bit rot — is **quarantined** into
    ``directory/quarantine/`` (counted under
    ``repro_spool_quarantined_total{reason="cache_entry"}``) and served as a
    miss, so it is recomputed once instead of poisoning every future probe.
    Flat legacy entries (``directory/<key>.json`` from the pre-sharding
    layout) are migrated into their shard transparently on first access.
    Hits refresh the file mtime so the janitor's oldest-first eviction
    approximates least-recently-used.
    """

    _metrics_tier = "disk"

    def __init__(self, directory: str, touch_on_hit: bool = True,
                 fs=None, retry=None) -> None:
        super().__init__()
        from repro.runtime.fsio import RetryPolicy, default_fs

        self.directory = directory
        self.touch_on_hit = touch_on_hit
        self.fs = fs if fs is not None else default_fs()
        self.retry = retry if retry is not None else RetryPolicy()
        self._quarantined = default_metrics().counter(
            "repro_spool_quarantined_total",
            "Corrupt spool files moved into quarantine/, by reason")

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, shard_of(key), f"{key}.json")

    def _legacy_path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.json")

    def _quarantine(self, path: str) -> None:
        """Move a corrupt entry aside so it cannot poison future probes."""
        target_dir = os.path.join(self.directory, "quarantine")
        try:
            self.fs.makedirs(target_dir, exist_ok=True)
            self.fs.rename(
                path, os.path.join(target_dir, os.path.basename(path)))
        except OSError:
            return
        self._quarantined.inc(reason="cache_entry")

    def _load(self, path: str) -> Optional[CacheEntry]:
        try:
            raw = self.fs.read_bytes(path)
        except OSError:
            return None
        try:
            entry = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            self._quarantine(path)
            return None
        if not isinstance(entry, dict) or entry.get("entry_version") != _ENTRY_VERSION:
            return None
        return entry

    def get(self, key: str) -> Optional[CacheEntry]:
        path = self._path(key)
        entry = self._load(path)
        if entry is None:
            entry = self._load(self._legacy_path(key))
            if entry is None:
                self._miss()
                return None
            # migrate the flat legacy file into its shard (atomic; a loser
            # of a concurrent migration race merely re-writes the same entry)
            try:
                self.fs.makedirs(os.path.dirname(path), exist_ok=True)
                self.fs.replace(self._legacy_path(key), path)
            except OSError:
                pass
        if self.touch_on_hit:
            try:
                self.fs.utime(path)
            except OSError:
                pass
        self._hit()
        return entry

    def get_with_source(self, key: str
                        ) -> Tuple[Optional[CacheEntry], Optional[str]]:
        entry = self.get(key)
        return entry, ("disk" if entry is not None else None)

    def put(self, key: str, entry: CacheEntry) -> None:
        """Store one entry (atomic write, transient-I/O retry).

        A persistently failing write still raises ``OSError`` — callers on
        the solve path (worker, service) treat that as "cache unavailable"
        and carry on with the solve result.
        """
        shard_dir = os.path.join(self.directory, shard_of(key))
        self.retry.call(self.fs.makedirs, shard_dir, exist_ok=True,
                        op="cache_put")
        self.retry.call(self.fs.write_json_atomic, self._path(key), entry,
                        op="cache_put")

    def paths(self) -> Iterator[str]:
        """Every entry file currently in the store (shards + legacy flat)."""
        try:
            names = sorted(os.listdir(self.directory))
        except OSError:
            return
        for name in names:
            path = os.path.join(self.directory, name)
            if name.endswith(".json"):
                yield path
            elif _is_shard_name(name) and os.path.isdir(path):
                try:
                    inner = sorted(os.listdir(path))
                except OSError:
                    continue
                for entry_name in inner:
                    if entry_name.endswith(".json"):
                        yield os.path.join(path, entry_name)

    def __len__(self) -> int:
        return sum(1 for _ in self.paths())

    def clear(self) -> None:
        for path in list(self.paths()):
            try:
                os.unlink(path)
            except OSError:
                pass


class TieredResultCache(_CacheStats):
    """In-memory LRU in front of an optional on-disk store.

    Disk hits are promoted into memory; writes go to both tiers.
    """

    _metrics_tier = "tiered"

    def __init__(self, memory: Optional[LRUResultCache] = None,
                 disk: Optional[JSONFileCache] = None) -> None:
        super().__init__()
        self.memory = memory if memory is not None else LRUResultCache()
        self.disk = disk

    def get(self, key: str) -> Optional[CacheEntry]:
        return self.get_with_source(key)[0]

    def get_with_source(self, key: str
                        ) -> Tuple[Optional[CacheEntry], Optional[str]]:
        source: Optional[str] = "memory"
        entry = self.memory.get(key)
        if entry is None and self.disk is not None:
            entry = self.disk.get(key)
            source = "disk"
            if entry is not None:
                self.memory.put(key, entry)
        if entry is None:
            self._miss()
            return None, None
        self._hit()
        return entry, source

    def put(self, key: str, entry: CacheEntry) -> None:
        self.memory.put(key, entry)
        if self.disk is not None:
            self.disk.put(key, entry)
