"""Task preparation and the worker-side solve payload.

One batch task goes through the same three steps no matter which execution
backend runs it — the in-process loop, the ``ProcessPoolExecutor`` fan-out of
:class:`~repro.runtime.runner.BatchRunner`, or a :mod:`repro.distributed`
worker pulling from a filesystem spool on another host:

1. **prepare** (:func:`prepare_tasks`) — resolve the method against the
   registry, derive the explicit seed for stochastic specs, fingerprint the
   instance and compute the cache key plus its *cacheability* (a seedless
   stochastic task is a fresh independent draw: it must not dedup into
   another task's result or be replayed from the cache);
2. **encode** (:func:`task_payload`) — flatten the prepared task into a
   JSON-safe dict that can cross a process boundary or rest in a spool file;
3. **solve** (:func:`solve_payload`) — rebuild the instance from the payload
   and dispatch through the solver facade, reporting errors as data.

Keeping the three steps here (instead of private to the runner) is what lets
the distributed queue path share semantics with the batch path bit-for-bit:
identical keys, identical seeds, identical error envelopes.
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional

from repro.core.context import SolveContext
from repro.core.dwg import SSBWeighting
from repro.runtime.cache import problem_fingerprint, result_key
from repro.runtime.registry import SolverRegistry

PAYLOAD_VERSION = 1


def format_error(exc: BaseException) -> str:
    """One-line error text carried in results instead of raising."""
    return "".join(traceback.format_exception_only(type(exc), exc)).strip()


def error_details(exc: BaseException) -> Optional[Dict[str, Any]]:
    """Structured diagnostics an exception chooses to expose.

    Duck-typed: an exception with a callable ``error_details()`` (e.g.
    :class:`~repro.baselines.pareto_dp.FrontierExplosion`, which reports
    how many labels the DP created and its peak frontier before the cap
    fired) gets those fields carried in the error envelope next to the
    one-line error text, so a blown-up task is diagnosable from the
    dead-letter record / ``repro audit`` without a re-run.  Diagnostics
    are best-effort: anything that fails or is malformed is dropped.
    """
    probe = getattr(exc, "error_details", None)
    if not callable(probe):
        return None
    try:
        details = probe()
    except Exception:  # noqa: BLE001 - diagnostics must never mask the error
        return None
    if not isinstance(details, dict) or not details:
        return None
    return {str(key): value for key, value in details.items()}


def derive_seed(base_seed: int, *parts: Any) -> int:
    """A stable 63-bit seed derived from ``base_seed`` and identifying parts.

    Deterministic across processes and runs (unlike ``hash()``), and
    independent of task submission order.
    """
    import hashlib

    text = ":".join([str(base_seed), *map(str, parts)])
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


@dataclass
class PreparedTask:
    """One task after method resolution, seeding and cache-key derivation.

    ``deadline_s`` is the task's cooperative wall-clock budget.  It is
    deliberately **not** part of the cache key: a deadline changes *when* a
    solve stops, not what the full answer is — and interrupted (partial)
    results are never written to the cache, so a cached entry is always the
    budget-free answer and serving it under any deadline is sound.
    """

    task: Any                      #: the originating BatchTask
    spec: Any                      #: resolved SolverSpec
    options: Dict[str, Any]        #: options with the derived seed folded in
    key: str                       #: full result-cache key
    cacheable: bool                #: False for seedless stochastic draws
    seed: Optional[int]            #: effective seed (stochastic specs only)
    problem_hash: str              #: canonical instance fingerprint
    deadline_s: Optional[float] = None  #: cooperative per-task budget


def prepare_task(task: Any, registry: SolverRegistry,
                 base_seed: Optional[int], index: int) -> PreparedTask:
    """Resolve, seed and key one task (``index`` disambiguates fresh draws)."""
    spec = registry.resolve(task.method)
    options = dict(task.options)
    seed = task.seed
    problem_hash = problem_fingerprint(task.problem)
    if spec.stochastic:
        if seed is None:
            seed = options.get("seed")
        if seed is None and base_seed is not None:
            seed = derive_seed(base_seed, problem_hash, spec.name,
                               sorted(options.items()))
        if seed is not None:
            options["seed"] = seed
    key = result_key(task.problem, spec.name, options=options,
                     weighting=task.weighting, problem_hash=problem_hash)
    # A stochastic task without a seed is a fresh independent draw: it must
    # not collapse into another task's result via dedup, and its result must
    # not be replayed from the cache.
    cacheable = not (spec.stochastic and options.get("seed") is None)
    if not cacheable:
        key = f"{key}#draw{index}"
    return PreparedTask(task=task, spec=spec, options=options, key=key,
                        cacheable=cacheable, seed=seed,
                        problem_hash=problem_hash,
                        deadline_s=getattr(task, "deadline_s", None))


def prepare_tasks(tasks: Iterable[Any], registry: SolverRegistry,
                  base_seed: Optional[int] = None) -> List[PreparedTask]:
    return [prepare_task(task, registry, base_seed, index)
            for index, task in enumerate(tasks)]


def task_payload(prep: PreparedTask, validate: bool = True,
                 trace: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """The JSON-safe envelope a worker needs to solve one prepared task."""
    from repro.model.serialization import problem_to_json

    task = prep.task
    payload = {
        "payload_version": PAYLOAD_VERSION,
        "key": prep.key,
        "problem_json": problem_to_json(task.problem, indent=0),
        "method": prep.spec.name,
        "options": prep.options,
        "weighting": (None if task.weighting is None else
                      [task.weighting.lambda_s, task.weighting.lambda_b]),
        "validate": validate,
        "cacheable": prep.cacheable,
        "tag": task.tag,
        "seed": prep.seed,
    }
    if prep.deadline_s is not None:
        # relative seconds, not an absolute time: the budget starts when a
        # worker actually begins the solve, not when the task was spooled
        payload["deadline_s"] = prep.deadline_s
    if trace is not None:
        # trace context is, like deadline_s, added after key computation:
        # whether a task is traced changes what we observe, never the answer,
        # so it must not fragment the result cache
        payload["trace"] = trace
    return payload


def solve_payload(payload: Dict[str, Any],
                  context: Optional[SolveContext] = None) -> Dict[str, Any]:
    """Solve one JSON-encoded task; never raises (errors are data).

    A ``"deadline_s"`` field in the payload builds a cooperative
    :class:`~repro.core.context.SolveContext` when the caller does not
    inject one (the distributed worker passes its own, clamped to the
    remaining lease and wired to the progress heartbeat).  The outcome
    carries ``status`` and ``incumbent_history``; a solve the context cut
    short before any incumbent existed is reported as an error *with* its
    terminal status, so streams can tell a timeout from a crash.
    """
    from repro.core.solver import solve
    from repro.model.serialization import problem_from_json
    from repro.runtime.cache import json_safe_details

    span = None
    trace = payload.get("trace")
    if trace is not None:
        # continue the submitter's trace in this process; tracing must never
        # take down a solve, so any failure just leaves the task untraced
        try:
            from repro.observability.tracing import Tracer

            tracer = Tracer.from_context(trace)
            if tracer is not None:
                span = tracer.resume(
                    trace, "solve",
                    task_id=payload.get("task_id") or payload.get("key"),
                    method=payload.get("method"))
        except Exception:  # noqa: BLE001 - telemetry is best-effort
            span = None
    try:
        problem = problem_from_json(payload["problem_json"])
        weighting = payload.get("weighting")
        if weighting is not None:
            weighting = SSBWeighting(*weighting)
        if context is None and (payload.get("deadline_s") is not None
                                or span is not None):
            context = SolveContext(deadline_s=payload.get("deadline_s"))
        if context is not None and span is not None and context.span is None:
            context.span = span
        started = time.perf_counter()
        result = solve(problem, method=payload["method"], weighting=weighting,
                       validate=payload.get("validate", True),
                       context=context,
                       **payload.get("options", {}))
        elapsed = time.perf_counter() - started
        history = [[round(t, 6), objective, source]
                   for t, objective, source in result.incumbent_history]
        if span is not None:
            span.set_attr("status", result.status)
            if result.objective is not None:
                span.set_attr("objective", result.objective)
            span.finish()
        if result.assignment is None:
            return {
                "key": payload["key"],
                "ok": False,
                "status": result.status,
                "error": f"{result.status}: the context fired before any "
                         f"feasible incumbent existed",
                "incumbent_history": history,
            }
        outcome = {
            "key": payload["key"],
            "ok": True,
            "method": result.method,
            "status": result.status,
            "objective": result.objective,
            "elapsed_s": elapsed,
            "placement": dict(result.assignment.placement),
            "details": json_safe_details(result.details),
            "incumbent_history": history,
        }
        if result.interrupted:
            outcome["interrupted"] = result.interrupted
        return outcome
    except Exception as exc:  # noqa: BLE001 - worker must report, not crash
        if span is not None:
            span.finish(error=format_error(exc))
        outcome = {
            "key": payload["key"],
            "ok": False,
            "error": format_error(exc),
        }
        diagnostics = error_details(exc)
        if diagnostics:
            outcome["details"] = diagnostics
        return outcome


def outcome_cacheable(outcome: Dict[str, Any]) -> bool:
    """True when a worker outcome may feed the shared result cache.

    Interrupted (deadline/cancelled) results are partial answers for *this*
    request's budget; caching them would serve a possibly sub-optimal
    objective to future budget-free requests under the same key.
    """
    return bool(outcome.get("ok")) and not outcome.get("interrupted")


def solve_payload_chunk(chunk: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    return [solve_payload(payload) for payload in chunk]
