"""Seeded random instance generators.

Random instances drive the property-based tests (cross-solver agreement) and
the complexity benchmarks.  Everything is seeded and deterministic: the same
``seed`` always produces the same instance.

Two families are provided:

* :func:`random_problem` — random CRU trees on random host-satellites
  platforms, with a knob for how *scattered* the sensors of a satellite are
  over the tree (scattered sensors produce non-contiguous colour regions,
  the regime where the paper's expansion step is not applicable and the
  solver exercises its enumeration fallback);
* :func:`random_dwg` — plain doubly weighted graphs for the §4 SSB algorithm
  in isolation.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.core.dwg import DoublyWeightedGraph
from repro.model.costs import CommunicationCostModel
from repro.model.cru import CRU, CRUTree, PROCESSING_KIND
from repro.model.platform import Host, HostSatelliteSystem, Link, Satellite
from repro.model.problem import AssignmentProblem
from repro.model.profiles import ExecutionProfile


def random_tree_spec(n_processing: int, seed: int = 0,
                     max_children: int = 3) -> List[Tuple[int, int]]:
    """A random ordered tree on ``n_processing`` nodes as (parent, child) index pairs.

    Node 0 is the root; children are attached to uniformly chosen existing
    nodes that still have capacity (< ``max_children`` children).
    """
    if n_processing < 1:
        raise ValueError("n_processing must be at least 1")
    rng = random.Random(seed)
    edges: List[Tuple[int, int]] = []
    child_count = {0: 0}
    for node in range(1, n_processing):
        candidates = [p for p, c in child_count.items() if c < max_children]
        parent = rng.choice(candidates) if candidates else rng.randrange(node)
        edges.append((parent, node))
        child_count[parent] = child_count.get(parent, 0) + 1
        child_count[node] = 0
    return edges


def random_problem(n_processing: int = 10,
                   n_satellites: int = 3,
                   seed: int = 0,
                   max_children: int = 3,
                   sensor_scatter: float = 0.3,
                   extra_sensor_probability: float = 0.25,
                   host_speedup: float = 3.0) -> AssignmentProblem:
    """A random, valid assignment problem.

    Parameters
    ----------
    n_processing:
        Number of processing CRUs (≥ 1; the root is one of them).
    n_satellites:
        Number of satellites (≥ 1).
    seed:
        Seed for the deterministic generator.
    max_children:
        Maximum number of children per processing CRU in the random tree.
    sensor_scatter:
        Probability that a sensor is wired to a uniformly random satellite
        instead of the satellite "owning" its branch.  0 produces perfectly
        clustered sensors (each top-level branch one satellite, contiguous
        colour regions); 1 produces fully scattered sensors.
    extra_sensor_probability:
        Probability of adding an additional sensor to an *internal*
        processing CRU.
    host_speedup:
        How much faster the host is than the satellites.
    """
    if n_satellites < 1:
        raise ValueError("n_satellites must be at least 1")
    if not 0.0 <= sensor_scatter <= 1.0:
        raise ValueError("sensor_scatter must lie in [0, 1]")
    rng = random.Random(seed)

    # ---- tree of processing CRUs
    tree = CRUTree(CRU("P0", PROCESSING_KIND))
    names = {0: "P0"}
    for parent_idx, child_idx in random_tree_spec(n_processing, seed=seed,
                                                  max_children=max_children):
        names[child_idx] = f"P{child_idx}"
        tree.add_processing(names[parent_idx], names[child_idx])

    # ---- platform
    system = HostSatelliteSystem(Host(host_id="host", speed_factor=host_speedup))
    satellite_ids = [f"sat{i}" for i in range(n_satellites)]
    for sid in satellite_ids:
        system.add_satellite(Satellite(sid, speed_factor=1.0),
                             Link(sid, latency_s=rng.uniform(0.001, 0.02)))

    # ---- sensors: every processing leaf gets one, internal CRUs occasionally too
    # "branch owner" satellites give clustered attachments; scatter overrides them
    branch_owner: Dict[str, str] = {}
    top_branches = tree.children_ids(tree.root_id) or [tree.root_id]
    for i, branch in enumerate(top_branches):
        owner = satellite_ids[i % n_satellites]
        for cru_id in tree.subtree_ids(branch):
            branch_owner[cru_id] = owner
    branch_owner.setdefault(tree.root_id, satellite_ids[0])

    sensor_attachment: Dict[str, str] = {}
    sensor_counter = 0

    def attach_sensor(parent_id: str) -> None:
        nonlocal sensor_counter
        sensor_id = f"sensor{sensor_counter}"
        sensor_counter += 1
        tree.add_sensor(parent_id, sensor_id,
                        output_frame_bytes=rng.uniform(256, 4096))
        if rng.random() < sensor_scatter:
            sensor_attachment[sensor_id] = rng.choice(satellite_ids)
        else:
            sensor_attachment[sensor_id] = branch_owner.get(parent_id, satellite_ids[0])

    processing_ids = list(tree.processing_ids())
    for cru_id in processing_ids:
        if not tree.children_ids(cru_id):
            attach_sensor(cru_id)
        elif cru_id != tree.root_id and rng.random() < extra_sensor_probability:
            attach_sensor(cru_id)

    # ---- profiles and costs
    profile = ExecutionProfile()
    for cru_id in tree.processing_ids():
        work = rng.uniform(0.5, 3.0)
        profile.set_host_time(cru_id, work / host_speedup)
        profile.set_satellite_time(cru_id, work)
    for sensor_id in tree.sensor_ids():
        profile.set_times(sensor_id, 0.0, 0.0)

    costs = CommunicationCostModel()
    for parent_id, child_id in tree.edges():
        if tree.cru(child_id).is_sensor:
            costs.set_cost(child_id, parent_id, rng.uniform(0.05, 0.6))
        else:
            costs.set_cost(child_id, parent_id, rng.uniform(0.02, 0.3))

    return AssignmentProblem(
        tree=tree,
        system=system,
        sensor_attachment=sensor_attachment,
        profile=profile,
        costs=costs,
        name=f"random-{n_processing}x{n_satellites}-seed{seed}",
    )


def random_dwg(n_nodes: int = 8, extra_edges: int = 10, seed: int = 0,
               sigma_range: Tuple[float, float] = (1.0, 20.0),
               beta_range: Tuple[float, float] = (1.0, 20.0)) -> DoublyWeightedGraph:
    """A random doubly weighted DAG guaranteed to connect ``S`` and ``T``.

    Nodes are ``0..n_nodes-1`` with ``0`` the source and ``n_nodes-1`` the
    target; a backbone path ensures connectivity and ``extra_edges`` forward
    edges are added on top.
    """
    if n_nodes < 2:
        raise ValueError("n_nodes must be at least 2")
    rng = random.Random(seed)
    dwg = DoublyWeightedGraph(source=0, target=n_nodes - 1)

    def rand_sigma() -> float:
        return round(rng.uniform(*sigma_range), 3)

    def rand_beta() -> float:
        return round(rng.uniform(*beta_range), 3)

    for node in range(n_nodes - 1):
        dwg.add_edge(node, node + 1, sigma=rand_sigma(), beta=rand_beta())
    for _ in range(extra_edges):
        tail = rng.randrange(0, n_nodes - 1)
        head = rng.randrange(tail + 1, n_nodes)
        dwg.add_edge(tail, head, sigma=rand_sigma(), beta=rand_beta())
    return dwg
