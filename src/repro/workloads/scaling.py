"""Instance families for the complexity experiments (paper §4.2 and §5.4).

The paper states two complexity results:

* the general SSB algorithm runs in ``O(|V|² · |E|)`` (one shortest-path
  search per iteration, at worst one edge eliminated per iteration);
* the adapted algorithm on the coloured assignment graph runs in
  ``O(|E'|)`` where ``|E'|`` is the number of edges of the *expanded* graph.

The families below sweep instance sizes so the benchmarks can plot measured
time / iteration counts against the predicted growth.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.core.dwg import DoublyWeightedGraph
from repro.model.problem import AssignmentProblem
from repro.workloads.generators import random_dwg, random_problem


def dwg_scaling_family(sizes: Sequence[int] = (8, 16, 32, 64, 128),
                       edges_per_node: int = 3,
                       seed: int = 7) -> List[Tuple[int, DoublyWeightedGraph]]:
    """Plain DWGs of increasing size for the §4.2 complexity experiment.

    Returns ``(n_nodes, dwg)`` pairs; the edge count grows linearly with the
    node count so the predicted time grows roughly like ``n³``.
    """
    family = []
    for i, n in enumerate(sizes):
        dwg = random_dwg(n_nodes=n, extra_edges=edges_per_node * n, seed=seed + i)
        family.append((n, dwg))
    return family


def tree_scaling_family(sizes: Sequence[int] = (8, 16, 32, 64),
                        n_satellites: int = 4,
                        sensor_scatter: float = 0.0,
                        seed: int = 11) -> List[Tuple[int, AssignmentProblem]]:
    """CRU-tree instances of increasing size for the §5.4 complexity experiment.

    ``sensor_scatter=0`` keeps each satellite's sensors clustered (contiguous
    colour regions, the paper's setting); increase it to probe the fallback
    regime.
    """
    family = []
    for i, n in enumerate(sizes):
        problem = random_problem(n_processing=n, n_satellites=n_satellites,
                                 seed=seed + i, sensor_scatter=sensor_scatter)
        family.append((n, problem))
    return family


def assignment_graph_edge_counts(family: Iterable[Tuple[int, AssignmentProblem]]
                                 ) -> Dict[int, int]:
    """Edge count of the coloured assignment graph for every family member."""
    from repro.core.assignment_graph import build_assignment_graph

    return {n: build_assignment_graph(problem).number_of_edges()
            for n, problem in family}
