"""Workload and instance generators.

* :mod:`~repro.workloads.paper_examples` — the paper's own worked examples:
  the Figure-4 doubly weighted graph and the Figure-2/5/6/8 CRU tree.
* :mod:`~repro.workloads.healthcare` — the epilepsy tele-monitoring scenario
  (Figure 1) that motivates the paper.
* :mod:`~repro.workloads.snmp` — the SNMP network-monitoring scenario the
  paper cites as a second application domain.
* :mod:`~repro.workloads.generators` — seeded random instances (CRU trees,
  platforms, profiles, plain DWGs) for property tests and benchmarks.
* :mod:`~repro.workloads.scaling` — instance families swept by the
  complexity experiments.
"""

from repro.workloads.paper_examples import (
    figure4_dwg,
    paper_example_problem,
    paper_example_profile_values,
)
from repro.workloads.healthcare import healthcare_scenario
from repro.workloads.snmp import snmp_scenario
from repro.workloads.generators import (
    random_problem,
    random_dwg,
    random_tree_spec,
)
from repro.workloads.scaling import (
    dwg_scaling_family,
    tree_scaling_family,
)

__all__ = [
    "figure4_dwg",
    "paper_example_problem",
    "paper_example_profile_values",
    "healthcare_scenario",
    "snmp_scenario",
    "random_problem",
    "random_dwg",
    "random_tree_spec",
    "dwg_scaling_family",
    "tree_scaling_family",
]
