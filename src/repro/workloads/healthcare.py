"""The epilepsy tele-monitoring scenario (paper Figure 1).

A patient's mobile terminal (the host) is connected to body-worn sensor
boxes (the satellites).  Each box measures a different kind of lower-level
context — ECG and accelerometer data in the paper's MobiHealth/AWARENESS
deployment — and the context reasoning procedure combines them into the
higher-level "probability of an epileptic seizure" context on which the
alarm decision is taken.

The CRU tree below follows the description in the paper and the cited
AWARENESS deliverable: per-signal preprocessing and feature extraction close
to the sensors, per-modality classification, and a final fusion plus alarm
decision at the root.  The numeric profile models a PDA-class host a few
times faster than the microcontroller-class sensor boxes and a Bluetooth-like
body-area link.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.model.costs import CommunicationCostModel
from repro.model.cru import CRU, CRUTree, PROCESSING_KIND
from repro.model.platform import Host, HostSatelliteSystem, Link, Satellite
from repro.model.problem import AssignmentProblem
from repro.model.profiles import ExecutionProfile


def healthcare_scenario(
    host_speed: float = 4.0,
    satellite_speed: float = 1.0,
    link_latency_s: float = 0.015,
    link_bandwidth_bytes_per_s: float = 25_000.0,
    accelerometer_boxes: int = 2,
) -> AssignmentProblem:
    """Build the epilepsy tele-monitoring instance.

    Parameters
    ----------
    host_speed, satellite_speed:
        Relative processing speeds (the mobile terminal is faster).
    link_latency_s, link_bandwidth_bytes_per_s:
        Body-area-network link characteristics used to derive the raw-data
        transfer costs from frame sizes.
    accelerometer_boxes:
        Number of accelerometer sensor boxes (the paper's Figure 1 shows two
        sensor boxes besides the ECG box).
    """
    if accelerometer_boxes < 1:
        raise ValueError("at least one accelerometer box is required")

    tree = CRUTree(CRU("seizure-risk", PROCESSING_KIND,
                       label="epileptic seizure probability (alarm decision)"))

    # --- ECG branch (sensor box "ecg-box")
    tree.add_processing("seizure-risk", "cardiac-stress", label="cardiac stress classifier")
    tree.add_processing("cardiac-stress", "hrv-features", label="heart-rate-variability features")
    tree.add_processing("hrv-features", "qrs-detect", label="QRS complex detection")
    tree.add_sensor("qrs-detect", "ecg-signal", label="ECG electrodes",
                    output_frame_bytes=4096)

    # --- activity branches (accelerometer boxes)
    tree.add_processing("seizure-risk", "activity-fusion", label="activity level fusion")
    for box in range(1, accelerometer_boxes + 1):
        classify = f"activity-classify-{box}"
        features = f"motion-features-{box}"
        filtering = f"motion-filter-{box}"
        tree.add_processing("activity-fusion", classify, label="activity classifier")
        tree.add_processing(classify, features, label="motion feature extraction")
        tree.add_processing(features, filtering, label="band-pass filtering")
        tree.add_sensor(filtering, f"accel-{box}", label="3-axis accelerometer",
                        output_frame_bytes=1536)

    system = HostSatelliteSystem(Host(host_id="mobile-terminal",
                                      label="patient's PDA", speed_factor=host_speed))
    system.add_satellite(
        Satellite("ecg-box", label="ECG sensor box", speed_factor=satellite_speed,
                  color="red"),
        Link("ecg-box", latency_s=link_latency_s,
             bandwidth_bytes_per_s=link_bandwidth_bytes_per_s))
    palette = ["blue", "green", "yellow", "orange", "purple", "cyan"]
    for box in range(1, accelerometer_boxes + 1):
        sid = f"motion-box-{box}"
        system.add_satellite(
            Satellite(sid, label=f"accelerometer box {box}", speed_factor=satellite_speed,
                      color=palette[(box - 1) % len(palette)]),
            Link(sid, latency_s=link_latency_s,
                 bandwidth_bytes_per_s=link_bandwidth_bytes_per_s))

    sensor_attachment: Dict[str, str] = {"ecg-signal": "ecg-box"}
    for box in range(1, accelerometer_boxes + 1):
        sensor_attachment[f"accel-{box}"] = f"motion-box-{box}"

    # nominal per-CRU workloads (arbitrary work units)
    workloads: Dict[str, float] = {
        "seizure-risk": 3.0,
        "cardiac-stress": 2.5, "hrv-features": 2.0, "qrs-detect": 1.5,
        "activity-fusion": 1.5,
    }
    for box in range(1, accelerometer_boxes + 1):
        workloads[f"activity-classify-{box}"] = 2.0
        workloads[f"motion-features-{box}"] = 1.6
        workloads[f"motion-filter-{box}"] = 1.0

    profile = ExecutionProfile()
    for cru_id in tree.processing_ids():
        work = workloads[cru_id]
        profile.set_host_time(cru_id, work / host_speed)
        profile.set_satellite_time(cru_id, work / satellite_speed)
    for sensor_id in tree.sensor_ids():
        profile.set_times(sensor_id, 0.0, 0.0)

    # processed features are an order of magnitude smaller than raw signals
    feature_bytes: Dict[Tuple[str, str], float] = {}
    for parent_id, child_id in tree.edges():
        if tree.cru(child_id).is_sensor:
            feature_bytes[(child_id, parent_id)] = tree.cru(child_id).output_frame_bytes
        else:
            feature_bytes[(child_id, parent_id)] = 256.0

    costs = CommunicationCostModel()
    correspondent_cache = None
    for (child_id, parent_id), size in feature_bytes.items():
        # the data crosses the link of the child's correspondent satellite;
        # conflicted CRUs never sit on the satellite side of a cut
        if correspondent_cache is None:
            probe = AssignmentProblem(tree=tree, system=system,
                                      sensor_attachment=sensor_attachment,
                                      profile=profile, costs=CommunicationCostModel(),
                                      name="probe")
            correspondent_cache = probe.correspondent_satellites()
        satellite_id = correspondent_cache.get(child_id)
        if satellite_id is None:
            costs.set_cost(child_id, parent_id, 0.0)
            continue
        link = system.link(satellite_id)
        costs.set_cost(child_id, parent_id, link.transfer_time(size))

    return AssignmentProblem(
        tree=tree,
        system=system,
        sensor_attachment=sensor_attachment,
        profile=profile,
        costs=costs,
        name="epilepsy-tele-monitoring",
    )
