"""The paper's worked examples, reconstructed as runnable instances.

Two artefacts are reproduced:

* :func:`figure4_dwg` — the small doubly weighted graph of Figure 4 on which
  the paper traces the SSB algorithm: three iterations, an intermediate
  candidate of SSB weight 29, the optimal path ``<5,10>-<5,10>`` of SSB
  weight 20, and termination when the min-S weight reaches 33.
* :func:`paper_example_problem` — the 13-CRU context reasoning tree of
  Figures 2/5/6/8 with four satellites (Red, Yellow, Blue, Green), including
  the structural facts the paper states explicitly: the edges
  ``<CRU1,CRU2>`` and ``<CRU1,CRU3>`` are the only conflicted ones (so CRU1,
  CRU2 and CRU3 are host-bound), the sensors connected to CRU5 and CRU13 are
  wired to satellite *B*, the σ label of the edge crossing ``<CRU2,CRU4>`` is
  ``h1+h2``, and the β label of the edge crossing ``<CRU3,CRU6>`` is
  ``s6+s13+c63``.

The paper does not publish its numeric processing times; the default profile
below uses a host (mobile terminal) roughly three times faster than the
sensor-box satellites, which is the regime the introduction describes.  All
values can be overridden.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

from repro.core.dwg import DoublyWeightedGraph
from repro.model.costs import CommunicationCostModel
from repro.model.cru import CRU, CRUTree, PROCESSING_KIND, SENSOR_KIND
from repro.model.platform import Host, HostSatelliteSystem, Link, Satellite
from repro.model.problem import AssignmentProblem
from repro.model.profiles import ExecutionProfile


# --------------------------------------------------------------------- Figure 4
def figure4_dwg() -> DoublyWeightedGraph:
    """The doubly weighted graph of Figure 4.

    Nodes ``S``, ``M`` and ``T``; the eight ``<σ, β>`` edges of the figure:
    ``S→M``: <5,10>, <6,8>, <15,10>, <20,9> and ``M→T``: <4,20>, <5,10>,
    <6,12>, <27,8>.  The optimal SSB path is <5,10>-<5,10> with SSB weight 20.
    """
    dwg = DoublyWeightedGraph(source="S", target="T")
    for sigma, beta in ((5, 10), (6, 8), (15, 10), (20, 9)):
        dwg.add_edge("S", "M", sigma=sigma, beta=beta)
    for sigma, beta in ((4, 20), (5, 10), (6, 12), (27, 8)):
        dwg.add_edge("M", "T", sigma=sigma, beta=beta)
    return dwg


# ---------------------------------------------------------------- Figure 2/5/6/8
#: Host execution times h_i used by the default profile (seconds per frame).
_DEFAULT_HOST_TIMES: Dict[str, float] = {
    "CRU1": 0.8, "CRU2": 0.5, "CRU3": 0.6, "CRU4": 0.7, "CRU5": 0.4,
    "CRU6": 0.5, "CRU7": 0.6, "CRU8": 0.3, "CRU9": 0.9, "CRU10": 0.4,
    "CRU11": 0.5, "CRU12": 0.7, "CRU13": 0.6,
}

#: Satellite execution times s_i (the sensor boxes are ~3x slower).
_DEFAULT_SATELLITE_TIMES: Dict[str, float] = {
    cru_id: round(3.0 * h, 6) for cru_id, h in _DEFAULT_HOST_TIMES.items()
}

#: Communication costs c_{child,parent} for one frame over the link.
_DEFAULT_COMM_COSTS: Dict[Tuple[str, str], float] = {
    ("CRU4", "CRU2"): 0.30, ("CRU5", "CRU2"): 0.25, ("CRU11", "CRU2"): 0.20,
    ("CRU6", "CRU3"): 0.35, ("CRU7", "CRU3"): 0.30, ("CRU8", "CRU3"): 0.20,
    ("CRU9", "CRU4"): 0.25, ("CRU10", "CRU4"): 0.20,
    ("CRU13", "CRU6"): 0.25, ("CRU12", "CRU7"): 0.25,
    # raw sensor frames are larger than processed features
    ("sR1", "CRU9"): 0.60, ("sR2", "CRU10"): 0.55,
    ("sB1", "CRU5"): 0.50, ("sB2", "CRU5"): 0.50, ("sB3", "CRU13"): 0.45,
    ("sY1", "CRU11"): 0.40,
    ("sG1", "CRU12"): 0.50, ("sG2", "CRU8"): 0.45,
}

#: Sensor -> satellite wiring (the a-priori known physical attachment).
_SENSOR_ATTACHMENT: Dict[str, str] = {
    "sR1": "R", "sR2": "R",
    "sB1": "B", "sB2": "B", "sB3": "B",
    "sY1": "Y",
    "sG1": "G", "sG2": "G",
}


def paper_example_profile_values() -> Dict[str, Dict]:
    """The default numeric profile of the Figure-2/5/6/8 instance.

    Returns a dict with keys ``"host_times"`` (h_i), ``"satellite_times"``
    (s_i), ``"comm_costs"`` (c_{child,parent}) and ``"sensor_attachment"`` so
    tests and experiments can recompute expected labels symbolically.
    """
    return {
        "host_times": dict(_DEFAULT_HOST_TIMES),
        "satellite_times": dict(_DEFAULT_SATELLITE_TIMES),
        "comm_costs": dict(_DEFAULT_COMM_COSTS),
        "sensor_attachment": dict(_SENSOR_ATTACHMENT),
    }


def _build_paper_tree() -> CRUTree:
    """The 13-CRU tree of Figure 2 (children listed left to right)."""
    tree = CRUTree(CRU("CRU1", PROCESSING_KIND, label="higher-level context fusion"))

    tree.add_processing("CRU1", "CRU2", label="left reasoning branch")
    tree.add_processing("CRU1", "CRU3", label="right reasoning branch")

    tree.add_processing("CRU2", "CRU4", label="feature fusion (R)")
    tree.add_processing("CRU2", "CRU5", label="feature extraction (B)")
    tree.add_processing("CRU2", "CRU11", label="feature extraction (Y)")

    tree.add_processing("CRU3", "CRU6", label="aggregation (B)")
    tree.add_processing("CRU3", "CRU7", label="aggregation (G)")
    tree.add_processing("CRU3", "CRU8", label="filtering (G)")

    tree.add_processing("CRU4", "CRU9", label="preprocessing (R)")
    tree.add_processing("CRU4", "CRU10", label="preprocessing (R)")

    tree.add_processing("CRU6", "CRU13", label="preprocessing (B)")
    tree.add_processing("CRU7", "CRU12", label="preprocessing (G)")

    tree.add_sensor("CRU9", "sR1", label="sensor on satellite R")
    tree.add_sensor("CRU10", "sR2", label="sensor on satellite R")
    tree.add_sensor("CRU5", "sB1", label="sensor on satellite B")
    tree.add_sensor("CRU5", "sB2", label="sensor on satellite B")
    tree.add_sensor("CRU11", "sY1", label="sensor on satellite Y")
    tree.add_sensor("CRU13", "sB3", label="sensor on satellite B")
    tree.add_sensor("CRU12", "sG1", label="sensor on satellite G")
    tree.add_sensor("CRU8", "sG2", label="sensor on satellite G")
    return tree


def paper_example_problem(
    host_times: Optional[Mapping[str, float]] = None,
    satellite_times: Optional[Mapping[str, float]] = None,
    comm_costs: Optional[Mapping[Tuple[str, str], float]] = None,
) -> AssignmentProblem:
    """The Figure-2/5/6/8 instance: 13 processing CRUs, 8 sensors, 4 satellites.

    Any of the three numeric tables can be overridden; missing entries fall
    back to the defaults of :func:`paper_example_profile_values`.
    """
    tree = _build_paper_tree()

    system = HostSatelliteSystem(Host(host_id="host", label="mobile terminal",
                                      speed_factor=3.0))
    system.add_satellite(Satellite("R", label="sensor box R", speed_factor=1.0, color="red"),
                         Link("R", latency_s=0.01))
    system.add_satellite(Satellite("Y", label="sensor box Y", speed_factor=1.0, color="yellow"),
                         Link("Y", latency_s=0.01))
    system.add_satellite(Satellite("B", label="sensor box B", speed_factor=1.0, color="blue"),
                         Link("B", latency_s=0.01))
    system.add_satellite(Satellite("G", label="sensor box G", speed_factor=1.0, color="green"),
                         Link("G", latency_s=0.01))

    h = dict(_DEFAULT_HOST_TIMES)
    h.update(host_times or {})
    s = dict(_DEFAULT_SATELLITE_TIMES)
    s.update(satellite_times or {})
    profile = ExecutionProfile(host_times=h, satellite_times=s)
    for sensor_id in tree.sensor_ids():
        profile.set_times(sensor_id, 0.0, 0.0)

    c = dict(_DEFAULT_COMM_COSTS)
    c.update(comm_costs or {})
    costs = CommunicationCostModel(explicit=c)

    return AssignmentProblem(
        tree=tree,
        system=system,
        sensor_attachment=_SENSOR_ATTACHMENT,
        profile=profile,
        costs=costs,
        name="paper-figure-2-example",
    )
