"""SNMP-style network-monitoring scenario.

The paper's §3 names "SNMP based network monitoring" as a second domain whose
context reasoning procedures fit the tree model: per-subnet probe machines
(the satellites) poll device counters (the sensors), aggregate them into
per-subnet health indicators, and a central management station (the host)
fuses the subnet indicators into a network-wide health context used for
alerting.
"""

from __future__ import annotations

from typing import Dict

from repro.model.costs import CommunicationCostModel
from repro.model.cru import CRU, CRUTree, PROCESSING_KIND
from repro.model.platform import Host, HostSatelliteSystem, Link, Satellite
from repro.model.problem import AssignmentProblem
from repro.model.profiles import ExecutionProfile


def snmp_scenario(subnets: int = 3, devices_per_subnet: int = 4,
                  host_speed: float = 6.0, probe_speed: float = 3.0,
                  wan_latency_s: float = 0.05,
                  wan_bandwidth_bytes_per_s: float = 20_000.0) -> AssignmentProblem:
    """Build an SNMP monitoring instance.

    Parameters
    ----------
    subnets:
        Number of monitored subnets; each has its own probe machine
        (satellite).
    devices_per_subnet:
        Number of polled devices (sensors) per subnet.
    host_speed, probe_speed:
        Relative processing speeds of the management station and the probes.
    wan_latency_s, wan_bandwidth_bytes_per_s:
        Probe-to-station link characteristics.
    """
    if subnets < 1:
        raise ValueError("at least one subnet is required")
    if devices_per_subnet < 1:
        raise ValueError("at least one device per subnet is required")

    tree = CRUTree(CRU("network-health", PROCESSING_KIND,
                       label="network-wide health assessment"))

    sensor_attachment: Dict[str, str] = {}
    workloads: Dict[str, float] = {"network-health": 4.0}

    for s in range(1, subnets + 1):
        subnet_root = f"subnet-{s}-health"
        tree.add_processing("network-health", subnet_root, label=f"subnet {s} health score")
        workloads[subnet_root] = 2.5

        util = f"subnet-{s}-utilisation"
        errors = f"subnet-{s}-errors"
        tree.add_processing(subnet_root, util, label="link utilisation aggregation")
        tree.add_processing(subnet_root, errors, label="error-rate trend analysis")
        workloads[util] = 1.5
        workloads[errors] = 1.8

        for d in range(1, devices_per_subnet + 1):
            poller = f"subnet-{s}-poll-{d}"
            parent = util if d % 2 == 1 else errors
            tree.add_processing(parent, poller, label=f"counter normalisation device {d}")
            workloads[poller] = 0.8
            sensor = f"subnet-{s}-device-{d}"
            tree.add_sensor(poller, sensor, label="SNMP counters", output_frame_bytes=2048)
            sensor_attachment[sensor] = f"probe-{s}"

    system = HostSatelliteSystem(Host(host_id="management-station",
                                      label="central management station",
                                      speed_factor=host_speed))
    palette = ["red", "blue", "green", "yellow", "orange", "purple", "cyan", "magenta"]
    for s in range(1, subnets + 1):
        sid = f"probe-{s}"
        system.add_satellite(
            Satellite(sid, label=f"subnet {s} probe", speed_factor=probe_speed,
                      color=palette[(s - 1) % len(palette)]),
            Link(sid, latency_s=wan_latency_s,
                 bandwidth_bytes_per_s=wan_bandwidth_bytes_per_s))

    profile = ExecutionProfile()
    for cru_id in tree.processing_ids():
        work = workloads[cru_id]
        profile.set_host_time(cru_id, work / host_speed)
        profile.set_satellite_time(cru_id, work / probe_speed)
    for sensor_id in tree.sensor_ids():
        profile.set_times(sensor_id, 0.0, 0.0)

    costs = CommunicationCostModel()
    probe_problem = AssignmentProblem(tree=tree, system=system,
                                      sensor_attachment=sensor_attachment,
                                      profile=profile, costs=CommunicationCostModel(),
                                      name="probe")
    correspondent = probe_problem.correspondent_satellites()
    for parent_id, child_id in tree.edges():
        satellite_id = correspondent.get(child_id)
        if satellite_id is None:
            costs.set_cost(child_id, parent_id, 0.0)
            continue
        link = system.link(satellite_id)
        size = tree.cru(child_id).output_frame_bytes if tree.cru(child_id).is_sensor else 384.0
        costs.set_cost(child_id, parent_id, link.transfer_time(size))

    return AssignmentProblem(
        tree=tree,
        system=system,
        sensor_attachment=sensor_attachment,
        profile=profile,
        costs=costs,
        name=f"snmp-monitoring-{subnets}x{devices_per_subnet}",
    )
